package topo

import (
	"math"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

// twoClusters builds two line segments far apart: nodes 0-2 and 3-5.
func twoClusters(t *testing.T) *Network {
	t.Helper()
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0),
		geom.Pt(100, 100), geom.Pt(110, 100), geom.Pt(120, 100),
	}
	net, err := NewNetwork(pts, 10, field200())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestComponents(t *testing.T) {
	net := twoClusters(t)
	labels, count := Components(net)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first cluster split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("second cluster split")
	}
	if labels[0] == labels[3] {
		t.Error("clusters merged")
	}

	net.SetAlive(4, false)
	labels, count = Components(net)
	if count != 3 {
		t.Errorf("after failure count = %d, want 3", count)
	}
	if labels[4] != -1 {
		t.Errorf("dead node label = %d, want -1", labels[4])
	}
}

func TestConnected(t *testing.T) {
	net := twoClusters(t)
	if !Connected(net, 0, 2) {
		t.Error("0 and 2 should be connected")
	}
	if Connected(net, 0, 3) {
		t.Error("clusters should not be connected")
	}
	if !Connected(net, 1, 1) {
		t.Error("node should be connected to itself")
	}
	net.SetAlive(2, false)
	if Connected(net, 0, 2) {
		t.Error("dead node reported connected")
	}
}

func TestHopDistances(t *testing.T) {
	net := lineNetwork(t, 5)
	dist := HopDistances(net, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	net.SetAlive(2, false)
	dist = HopDistances(net, 0)
	if dist[3] != -1 || dist[4] != -1 {
		t.Errorf("nodes beyond failure should be unreachable, got %v", dist)
	}
}

func TestShortestHopPath(t *testing.T) {
	net := lineNetwork(t, 5)
	path := ShortestHopPath(net, 0, 4)
	if len(path) != 5 {
		t.Fatalf("path = %v, want 5 nodes", path)
	}
	if path[0] != 0 || path[4] != 4 {
		t.Errorf("path endpoints wrong: %v", path)
	}
	if p := ShortestHopPath(net, 2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v", p)
	}
	net.SetAlive(2, false)
	if p := ShortestHopPath(net, 0, 4); p != nil {
		t.Errorf("expected nil path across failure, got %v", p)
	}
}

func TestShortestEuclideanPath(t *testing.T) {
	// Triangle where the two-hop route is shorter than... build a case
	// where hop-shortest and length-shortest differ:
	//   0 --- 1 --- 4  (direct chain along x)
	//   0 - 2 - 3 - 4 (detour)
	// radius covers 0-1 (long edge 19) and a shorter zig-zag.
	pts := []geom.Point{
		geom.Pt(0, 0),  // 0
		geom.Pt(19, 0), // 1
		geom.Pt(38, 0), // 2 (dest)
		geom.Pt(10, 2), // 3
		geom.Pt(25, 2), // 4
	}
	net, err := NewNetwork(pts, 20, field200())
	if err != nil {
		t.Fatal(err)
	}
	hop := ShortestHopPath(net, 0, 2)
	euc := ShortestEuclideanPath(net, 0, 2)
	if hop == nil || euc == nil {
		t.Fatal("paths should exist")
	}
	if len(euc) < len(hop) {
		t.Errorf("euclidean path cannot have fewer hops than hop-optimal: %v vs %v", euc, hop)
	}
	if net.PathLength(euc) > net.PathLength(hop)+1e-9 {
		t.Errorf("euclidean-shortest longer than hop path: %v > %v",
			net.PathLength(euc), net.PathLength(hop))
	}
	// Endpoint and consecutive-range invariants.
	for i := 1; i < len(euc); i++ {
		if !net.InRange(euc[i-1], euc[i]) {
			t.Errorf("euclidean path uses non-edge %d-%d", euc[i-1], euc[i])
		}
	}
	if p := ShortestEuclideanPath(net, 1, 1); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestShortestPathsAgreeOnLine(t *testing.T) {
	net := lineNetwork(t, 8)
	hop := ShortestHopPath(net, 0, 7)
	euc := ShortestEuclideanPath(net, 0, 7)
	if len(hop) != len(euc) {
		t.Fatalf("line network: hop %v vs euclidean %v", hop, euc)
	}
	if math.Abs(net.PathLength(hop)-net.PathLength(euc)) > 1e-9 {
		t.Error("line network: path lengths differ")
	}
}

func TestPathsOnDeadEndpoints(t *testing.T) {
	net := lineNetwork(t, 3)
	net.SetAlive(0, false)
	if ShortestHopPath(net, 0, 2) != nil {
		t.Error("path from dead source should be nil")
	}
	if ShortestEuclideanPath(net, 2, 0) != nil {
		t.Error("path to dead dest should be nil")
	}
	if d := HopDistances(net, 0); d[1] != -1 {
		t.Error("distances from dead source should be unreachable")
	}
}

func TestRoutablePairs(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelFA, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	labels, _ := Components(net)
	pairs := RoutablePairs(net, 10, 80)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs, want 10", len(pairs))
	}
	seen := make(map[[2]NodeID]bool)
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		if labels[p[0]] < 0 || labels[p[0]] != labels[p[1]] {
			t.Fatalf("pair %v spans components", p)
		}
		if d := net.Dist(p[0], p[1]); d < 80 {
			t.Fatalf("pair %v only %.1f apart", p, d)
		}
	}
	// Deterministic.
	again := RoutablePairs(net, 10, 80)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("RoutablePairs is not deterministic")
		}
	}
	// A dead node never appears.
	victim := pairs[0][0]
	net.SetAlive(victim, false)
	for _, p := range RoutablePairs(net, 300, 80) {
		if p[0] == victim || p[1] == victim {
			t.Fatalf("dead node %d in pair %v", victim, p)
		}
	}
	net.SetAlive(victim, true)
}
