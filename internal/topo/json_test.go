package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	dep, err := Deploy(DefaultDeployConfig(ModelFA, 120, 21))
	if err != nil {
		t.Fatal(err)
	}
	net := dep.Net
	net.SetAlive(5, false)
	net.SetAlive(17, false)

	var buf bytes.Buffer
	if err := net.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.N() != net.N() || got.Radius != net.Radius || got.Field != net.Field {
		t.Fatal("global parameters not preserved")
	}
	for i := range net.Nodes {
		if got.Nodes[i].Pos != net.Nodes[i].Pos {
			t.Fatalf("node %d position differs", i)
		}
		if got.Nodes[i].Alive != net.Nodes[i].Alive {
			t.Fatalf("node %d alive flag differs", i)
		}
	}
	// Adjacency is a pure function of positions; spot check.
	for _, u := range []NodeID{0, 50, 119} {
		a, b := net.Neighbors(u), got.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency differs: %v vs %v", u, a, b)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"radius":0,"field":[0,0,1,1],"positions":[[1,1]]}`)); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"radius":10,"field":[0,0,1,1],"positions":[[1,1]],"dead":[5]}`)); err == nil {
		t.Error("out-of-range dead id accepted")
	}
}
