package topo

import (
	"math/rand/v2"
	"sort"
	"testing"

	"github.com/straightpath/wasn/internal/geom"
)

func field200() geom.Rect { return geom.FromCorners(geom.Pt(0, 0), geom.Pt(200, 200)) }

// lineNetwork builds nodes at (0,0), (10,0), (20,0), ... with radius 10,
// forming a path graph.
func lineNetwork(t *testing.T, n int) *Network {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*10, 0)
	}
	net, err := NewNetwork(pts, 10, field200())
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, 0, field200()); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := NewNetwork(nil, -5, field200()); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestLineNetworkAdjacency(t *testing.T) {
	net := lineNetwork(t, 5)
	tests := []struct {
		u    NodeID
		want []NodeID
	}{
		{u: 0, want: []NodeID{1}},
		{u: 1, want: []NodeID{0, 2}},
		{u: 2, want: []NodeID{1, 3}},
		{u: 4, want: []NodeID{3}},
	}
	for _, tt := range tests {
		got := net.Neighbors(tt.u)
		if len(got) != len(tt.want) {
			t.Errorf("Neighbors(%d) = %v, want %v", tt.u, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Neighbors(%d) = %v, want %v", tt.u, got, tt.want)
				break
			}
		}
	}
	if got := net.EdgeCount(); got != 4 {
		t.Errorf("EdgeCount = %d, want 4", got)
	}
	if got := net.AvgDegree(); got != 8.0/5 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
}

func TestInRangeAndDist(t *testing.T) {
	net := lineNetwork(t, 3)
	if !net.InRange(0, 1) || net.InRange(0, 2) {
		t.Error("InRange wrong on line network")
	}
	if net.InRange(1, 1) {
		t.Error("node in range of itself")
	}
	if got := net.Dist(0, 2); got != 20 {
		t.Errorf("Dist(0,2) = %v, want 20", got)
	}
}

func TestNodeFailureFiltersQueries(t *testing.T) {
	net := lineNetwork(t, 4)
	net.SetAlive(1, false)
	if got := net.Neighbors(0); len(got) != 0 {
		t.Errorf("Neighbors(0) after failure = %v, want empty", got)
	}
	if got := net.Neighbors(2); len(got) != 1 || got[0] != 3 {
		t.Errorf("Neighbors(2) after failure = %v, want [3]", got)
	}
	if net.Neighbors(1) != nil {
		t.Error("dead node should have no neighbors")
	}
	if got := len(net.AliveIDs()); got != 3 {
		t.Errorf("AliveIDs count = %d, want 3", got)
	}
	net.SetAlive(1, true)
	if got := net.Neighbors(0); len(got) != 1 {
		t.Errorf("Neighbors(0) after revival = %v", got)
	}
}

// Grid-built adjacency must exactly match the O(n^2) brute force.
func TestAdjacencyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.IntN(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*200, rng.Float64()*200)
		}
		net, err := NewNetwork(pts, 20, field200())
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			var want []NodeID
			for v := 0; v < n; v++ {
				if v != u && geom.Dist2(pts[u], pts[v]) <= 400 {
					want = append(want, NodeID(v))
				}
			}
			got := net.Neighbors(NodeID(u))
			if len(got) != len(want) {
				t.Fatalf("trial %d node %d: got %d neighbors, want %d", trial, u, len(got), len(want))
			}
			sorted := append([]NodeID(nil), got...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			for i := range want {
				if sorted[i] != want[i] {
					t.Fatalf("trial %d node %d: neighbors %v, want %v", trial, u, sorted, want)
				}
			}
		}
	}
}

func TestPathLength(t *testing.T) {
	net := lineNetwork(t, 4)
	if got := net.PathLength([]NodeID{0, 1, 2, 3}); got != 30 {
		t.Errorf("PathLength = %v, want 30", got)
	}
	if got := net.PathLength([]NodeID{2}); got != 0 {
		t.Errorf("single-node path length = %v, want 0", got)
	}
	if got := net.PathLength(nil); got != 0 {
		t.Errorf("empty path length = %v, want 0", got)
	}
}

func TestSymmetry(t *testing.T) {
	// Adjacency of a unit-disk graph is symmetric.
	rng := rand.New(rand.NewPCG(3, 4))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*200, rng.Float64()*200)
	}
	net, err := NewNetwork(pts, 20, field200())
	if err != nil {
		t.Fatal(err)
	}
	for u := range net.Nodes {
		for _, v := range net.Neighbors(NodeID(u)) {
			found := false
			for _, w := range net.Neighbors(v) {
				if w == NodeID(u) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
}
