package topo

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/straightpath/wasn/internal/geom"
)

// networkJSON is the on-disk form of a Network. Only positions and global
// parameters are stored; adjacency is recomputed on load (it is a pure
// function of positions and radius).
type networkJSON struct {
	Radius    float64      `json:"radius"`
	Field     [4]float64   `json:"field"` // minX, minY, maxX, maxY
	Positions [][2]float64 `json:"positions"`
	Dead      []NodeID     `json:"dead,omitempty"`
}

// WriteJSON serializes the network to w.
func (net *Network) WriteJSON(w io.Writer) error {
	out := networkJSON{
		Radius:    net.Radius,
		Field:     [4]float64{net.Field.Min.X, net.Field.Min.Y, net.Field.Max.X, net.Field.Max.Y},
		Positions: make([][2]float64, net.N()),
	}
	for i, n := range net.Nodes {
		out.Positions[i] = [2]float64{n.Pos.X, n.Pos.Y}
		if !n.Alive {
			out.Dead = append(out.Dead, n.ID)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes a network written by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var in networkJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("topo: decoding network: %w", err)
	}
	pts := make([]geom.Point, len(in.Positions))
	for i, xy := range in.Positions {
		pts[i] = geom.Pt(xy[0], xy[1])
	}
	field := geom.FromCorners(geom.Pt(in.Field[0], in.Field[1]), geom.Pt(in.Field[2], in.Field[3]))
	net, err := NewNetwork(pts, in.Radius, field)
	if err != nil {
		return nil, err
	}
	for _, id := range in.Dead {
		if id < 0 || int(id) >= net.N() {
			return nil, fmt.Errorf("topo: dead node id %d out of range [0, %d)", id, net.N())
		}
		net.SetAlive(id, false)
	}
	return net, nil
}
