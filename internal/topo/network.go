package topo

import (
	"fmt"
	"sort"

	"github.com/straightpath/wasn/internal/geom"
)

// Network is the WASN graph G = (V, E): nodes with identical radio range in
// a rectangular field, edges between every pair within range. Adjacency is
// precomputed at construction; node failure (SetAlive) filters queries
// without rebuilding.
//
// A Network is safe for concurrent reads after construction as long as no
// SetAlive calls race with them; the experiment harness builds one network
// per goroutine.
type Network struct {
	Nodes  []Node
	Radius float64
	Field  geom.Rect

	adj [][]NodeID
}

// NewNetwork builds the unit-disk graph over the given positions.
// Positions outside the field are accepted (the field only scopes grid
// hashing and deployment); radius must be positive.
func NewNetwork(positions []geom.Point, radius float64, field geom.Rect) (*Network, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("topo: radius must be positive, got %v", radius)
	}
	nodes := make([]Node, len(positions))
	for i, p := range positions {
		nodes[i] = Node{ID: NodeID(i), Pos: p, Alive: true}
	}
	net := &Network{
		Nodes:  nodes,
		Radius: radius,
		Field:  field,
		adj:    make([][]NodeID, len(nodes)),
	}
	net.buildAdjacency()
	return net, nil
}

func (net *Network) buildAdjacency() {
	g := newGrid(net.Field, net.Radius, net.Nodes)
	r2 := net.Radius * net.Radius
	for i := range net.Nodes {
		u := &net.Nodes[i]
		var nbrs []NodeID
		g.visitNear(u.Pos, net.Radius, func(v NodeID) {
			if v == u.ID {
				return
			}
			if geom.Dist2(u.Pos, net.Nodes[v].Pos) <= r2 {
				nbrs = append(nbrs, v)
			}
		})
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		net.adj[i] = nbrs
	}
}

// N returns the number of nodes (alive or not).
func (net *Network) N() int { return len(net.Nodes) }

// Pos returns the location L(u) of node u.
func (net *Network) Pos(u NodeID) geom.Point { return net.Nodes[u].Pos }

// Alive reports whether u is alive.
func (net *Network) Alive(u NodeID) bool { return net.Nodes[u].Alive }

// SetAlive marks node u alive or failed. Failed nodes disappear from
// Neighbors and Degree without mutating the precomputed adjacency.
func (net *Network) SetAlive(u NodeID, alive bool) { net.Nodes[u].Alive = alive }

// Neighbors returns N(u): the alive neighbors of u. When u itself is dead
// it has no neighbors. The returned slice must not be modified; when no
// node has failed it aliases the internal adjacency (hot path), otherwise
// it is a fresh filtered copy.
func (net *Network) Neighbors(u NodeID) []NodeID {
	if !net.Nodes[u].Alive {
		return nil
	}
	all := net.adj[u]
	clean := true
	for _, v := range all {
		if !net.Nodes[v].Alive {
			clean = false
			break
		}
	}
	if clean {
		return all
	}
	out := make([]NodeID, 0, len(all))
	for _, v := range all {
		if net.Nodes[v].Alive {
			out = append(out, v)
		}
	}
	return out
}

// Degree returns |N(u)| over alive neighbors.
func (net *Network) Degree(u NodeID) int { return len(net.Neighbors(u)) }

// Dist returns the Euclidean distance between nodes u and v.
func (net *Network) Dist(u, v NodeID) float64 {
	return geom.Dist(net.Nodes[u].Pos, net.Nodes[v].Pos)
}

// InRange reports whether u and v are within radio range (u != v).
func (net *Network) InRange(u, v NodeID) bool {
	if u == v {
		return false
	}
	return geom.Dist2(net.Nodes[u].Pos, net.Nodes[v].Pos) <= net.Radius*net.Radius
}

// AliveIDs returns the ids of all alive nodes.
func (net *Network) AliveIDs() []NodeID {
	out := make([]NodeID, 0, len(net.Nodes))
	for _, n := range net.Nodes {
		if n.Alive {
			out = append(out, n.ID)
		}
	}
	return out
}

// Positions returns a copy of all node positions, indexed by NodeID.
func (net *Network) Positions() []geom.Point {
	out := make([]geom.Point, len(net.Nodes))
	for i, n := range net.Nodes {
		out[i] = n.Pos
	}
	return out
}

// PathLength returns the total Euclidean length of the node path.
func (net *Network) PathLength(path []NodeID) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		total += net.Dist(path[i-1], path[i])
	}
	return total
}

// EdgeCount returns |E| over alive nodes.
func (net *Network) EdgeCount() int {
	total := 0
	for _, n := range net.Nodes {
		if !n.Alive {
			continue
		}
		total += len(net.Neighbors(n.ID))
	}
	return total / 2
}

// AvgDegree returns the mean degree over alive nodes (0 for an empty net).
func (net *Network) AvgDegree() float64 {
	alive := 0
	total := 0
	for _, n := range net.Nodes {
		if !n.Alive {
			continue
		}
		alive++
		total += len(net.Neighbors(n.ID))
	}
	if alive == 0 {
		return 0
	}
	return float64(total) / float64(alive)
}
