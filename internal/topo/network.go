package topo

import (
	"fmt"
	"sort"

	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/par"
)

// Network is the WASN graph G = (V, E): nodes with identical radio range in
// a rectangular field, edges between every pair within range. Adjacency is
// precomputed at construction; node failure (SetAlive) filters queries
// without rebuilding.
//
// # Adjacency layout
//
// The adjacency is stored in CSR (compressed sparse row) form: one flat
// backing array of neighbor ids (adjList) plus one offsets array (adjOff,
// len N+1), so the neighbors of u occupy adjList[adjOff[u]:adjOff[u+1]],
// sorted ascending. Compared with a slice-of-slices this is one
// allocation instead of N, and neighbor rows of consecutive nodes are
// contiguous in memory — the routing hot path walks them with zero
// pointer chasing.
//
// # Aliasing and ownership
//
// Neighbors returns a subslice of the internal CSR backing array whenever
// it can (always while no node has failed, and for rows untouched by
// failures afterwards). Callers MUST treat the returned slice as
// immutable and MUST NOT retain it across a SetAlive or SetPositions
// call: position repair double-buffers the CSR backing arrays and a swap
// leaves retained row slices pointing at recycled scratch. Only rows
// containing a dead neighbor are filtered into a freshly allocated copy.
//
// A Network is safe for concurrent reads after construction as long as no
// SetAlive or SetPositions calls race with them; the experiment harness
// builds one network per goroutine and the serve package serializes
// mutations behind a per-deployment RWMutex.
type Network struct {
	Nodes  []Node
	Radius float64
	Field  geom.Rect

	// CSR adjacency: neighbors of u are adjList[adjOff[u]:adjOff[u+1]].
	adjOff  []int32
	adjList []NodeID
	// adjAng[i] is the edge bearing atan2-style (geom.Angle) from the
	// row owner to adjList[i], precomputed so angular sweeps (BOUNDHOLE
	// walks, the routers' ray rotations, the TENT rule) never call atan2
	// on the hot path.
	adjAng []float64
	// adjX/adjY[i] are the position of adjList[i], packed per edge slot
	// in structure-of-arrays form: a candidate scan reads neighbor
	// coordinates with two sequential float64 loads instead of chasing
	// Nodes[v].Pos through the node table. SetPositions keeps them
	// consistent by rewriting exactly the rows whose geometry changed.
	adjX, adjY []float64

	// aliveBits is the node liveness as a bitset (bit u of word u/64),
	// maintained by SetAlive. Scans over static CSR rows test a dead
	// candidate with one load+mask instead of touching Nodes[v].Alive.
	aliveBits []uint64

	// dead counts failed nodes network-wide. While it is zero Neighbors
	// and Degree take the O(1) alias path without scanning liveness.
	dead int

	// grid is the spatial hash built during construction, retained and
	// maintained incrementally by SetPositions so position repair can
	// re-query in-range sets without rehashing the whole node table.
	grid *grid

	// Move scratch (see SetPositions): generation-stamped dirty marks and
	// double-buffered CSR backing arrays, so steady-state drift batches
	// rewrite adjacency without reallocating.
	mvGen       uint32
	mvMark      []uint32
	mvDirty     []NodeID
	mvCounts    []int32
	offScratch  []int32
	listScratch []NodeID
	angScratch  []float64
	xScratch    []float64
	yScratch    []float64
}

// NewNetwork builds the unit-disk graph over the given positions.
// Positions outside the field are accepted (the field only scopes grid
// hashing and deployment); radius must be positive.
func NewNetwork(positions []geom.Point, radius float64, field geom.Rect) (*Network, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("topo: radius must be positive, got %v", radius)
	}
	nodes := make([]Node, len(positions))
	for i, p := range positions {
		nodes[i] = Node{ID: NodeID(i), Pos: p, Alive: true}
	}
	net := &Network{
		Nodes:  nodes,
		Radius: radius,
		Field:  field,
	}
	net.buildAdjacency()
	return net, nil
}

// buildAdjacency computes the CSR adjacency in two parallel passes over
// the spatial hash grid: a counting pass fixing the row offsets, then a
// fill pass writing each row (sorted ascending) into its slot. Both
// passes touch disjoint index ranges per worker, so they fan out across
// GOMAXPROCS via par.For.
func (net *Network) buildAdjacency() {
	n := len(net.Nodes)
	g := newGrid(net.Field, net.Radius, net.Nodes)
	net.grid = g
	r2 := net.Radius * net.Radius

	// Pass 1: count neighbors per node.
	counts := make([]int32, n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := &net.Nodes[i]
			var c int32
			g.visitNear(u.Pos, net.Radius, func(v NodeID) {
				if v != u.ID && geom.Dist2(u.Pos, net.Nodes[v].Pos) <= r2 {
					c++
				}
			})
			counts[i] = c
		}
	})

	// Prefix-sum the counts into row offsets.
	net.adjOff = make([]int32, n+1)
	var total int32
	for i, c := range counts {
		net.adjOff[i] = total
		total += c
	}
	net.adjOff[n] = total
	net.adjList = make([]NodeID, total)
	net.adjAng = make([]float64, total)
	net.adjX = make([]float64, total)
	net.adjY = make([]float64, total)

	// Pass 2: fill and sort each row, then compute the edge bearings and
	// pack the neighbor positions into the per-edge SoA arrays.
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := &net.Nodes[i]
			row := net.adjList[net.adjOff[i]:net.adjOff[i]:net.adjOff[i+1]]
			g.visitNear(u.Pos, net.Radius, func(v NodeID) {
				if v != u.ID && geom.Dist2(u.Pos, net.Nodes[v].Pos) <= r2 {
					row = append(row, v)
				}
			})
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
			base := int(net.adjOff[i])
			for j, v := range row {
				pv := net.Nodes[v].Pos
				net.adjAng[base+j] = geom.Angle(u.Pos, pv)
				net.adjX[base+j] = pv.X
				net.adjY[base+j] = pv.Y
			}
		}
	})

	net.aliveBits = make([]uint64, (n+63)/64)
	for i, nd := range net.Nodes {
		if nd.Alive {
			net.aliveBits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// N returns the number of nodes (alive or not).
func (net *Network) N() int { return len(net.Nodes) }

// Pos returns the location L(u) of node u.
func (net *Network) Pos(u NodeID) geom.Point { return net.Nodes[u].Pos }

// Alive reports whether u is alive.
func (net *Network) Alive(u NodeID) bool { return net.Nodes[u].Alive }

// SetAlive marks node u alive or failed. Failed nodes disappear from
// Neighbors and Degree without mutating the precomputed adjacency.
func (net *Network) SetAlive(u NodeID, alive bool) {
	if net.Nodes[u].Alive == alive {
		return
	}
	net.Nodes[u].Alive = alive
	if alive {
		net.aliveBits[u>>6] |= 1 << (uint(u) & 63)
		net.dead--
	} else {
		net.aliveBits[u>>6] &^= 1 << (uint(u) & 63)
		net.dead++
	}
}

// DeadCount returns the number of failed nodes.
func (net *Network) DeadCount() int { return net.dead }

// row returns the full static CSR row of u (alive and dead neighbors).
func (net *Network) row(u NodeID) []NodeID {
	return net.adjList[net.adjOff[u]:net.adjOff[u+1]]
}

// AdjacencyRow returns the static CSR neighbor row of u — every
// neighbor, alive or dead, sorted ascending. Callers doing angular
// sweeps iterate it together with AdjacencyAngles (the two are index
// aligned) and skip dead entries themselves; DeadCount()==0 means no
// liveness check is needed. The slice aliases internal storage and must
// not be modified.
func (net *Network) AdjacencyRow(u NodeID) []NodeID { return net.row(u) }

// AdjacencyAngles returns the precomputed edge bearings (geom.Angle
// from u to each neighbor) aligned index-for-index with AdjacencyRow(u).
// The slice aliases internal storage and must not be modified.
func (net *Network) AdjacencyAngles(u NodeID) []float64 {
	return net.adjAng[net.adjOff[u]:net.adjOff[u+1]]
}

// AdjacencyXY returns the packed neighbor positions of u's static CSR
// row, index aligned with AdjacencyRow(u): xs[j]/ys[j] is the position
// of the j-th neighbor. The structure-of-arrays layout lets candidate
// scans gather coordinates with sequential loads instead of per-node
// pointer chasing. Both slices alias internal storage and must not be
// modified.
func (net *Network) AdjacencyXY(u NodeID) (xs, ys []float64) {
	return net.adjX[net.adjOff[u]:net.adjOff[u+1]], net.adjY[net.adjOff[u]:net.adjOff[u+1]]
}

// AliveBits returns the node-liveness bitset: bit u%64 of word u/64 is
// set while node u is alive. Together with AdjacencyRow it lets scans
// skip dead candidates with one load+mask; DeadCount()==0 means every
// bit of every valid node is set and the test can be skipped entirely.
// The slice aliases internal storage, is maintained by SetAlive, and
// must not be modified.
func (net *Network) AliveBits() []uint64 { return net.aliveBits }

// AdjOffset returns the global CSR slot index of the first edge of u's
// row: AdjacencyRow(u)[j] occupies slot AdjOffset(u)+j. Callers keeping
// per-edge state in AdjSlots()-length arrays use it to address a whole
// row without the per-edge AdjSlotOf search.
func (net *Network) AdjOffset(u NodeID) int { return int(net.adjOff[u]) }

// AdjSlots returns the number of directed CSR edge slots (the length of
// the flat adjacency array). Together with AdjSlotOf it lets callers
// keep O(1)-clearable per-edge state in flat arrays instead of maps —
// the BOUNDHOLE walker stamps visited edges this way.
func (net *Network) AdjSlots() int { return len(net.adjList) }

// AdjSlotOf returns the global CSR slot index of the directed edge u→v,
// or -1 when v is not a static neighbor of u. The slot identifies the
// edge uniquely across the network and indexes arrays of AdjSlots()
// length.
func (net *Network) AdjSlotOf(u, v NodeID) int {
	for i := int(net.adjOff[u]); i < int(net.adjOff[u+1]); i++ {
		if net.adjList[i] == v {
			return i
		}
	}
	return -1
}

// EdgeBearing returns the precomputed bearing of the directed edge u→v
// (geom.Angle from u to v), or ok=false when v is not a static neighbor
// of u. Callers walking along edges use it to avoid recomputing atan2.
func (net *Network) EdgeBearing(u, v NodeID) (float64, bool) {
	if slot := net.AdjSlotOf(u, v); slot >= 0 {
		return net.adjAng[slot], true
	}
	return 0, false
}

// Neighbors returns N(u): the alive neighbors of u. When u itself is dead
// it has no neighbors. The returned slice must not be modified and must
// not be retained across SetAlive: while no node has failed it aliases
// the internal CSR row (O(1), the hot path), after failures rows with a
// dead member are returned as fresh filtered copies.
func (net *Network) Neighbors(u NodeID) []NodeID {
	all := net.row(u)
	if net.dead == 0 {
		return all
	}
	if !net.Nodes[u].Alive {
		return nil
	}
	clean := true
	for _, v := range all {
		if !net.Nodes[v].Alive {
			clean = false
			break
		}
	}
	if clean {
		return all
	}
	out := make([]NodeID, 0, len(all))
	for _, v := range all {
		if net.Nodes[v].Alive {
			out = append(out, v)
		}
	}
	return out
}

// Degree returns |N(u)| over alive neighbors without materializing a
// neighbor slice.
func (net *Network) Degree(u NodeID) int {
	all := net.row(u)
	if net.dead == 0 {
		return len(all)
	}
	if !net.Nodes[u].Alive {
		return 0
	}
	deg := 0
	for _, v := range all {
		if net.Nodes[v].Alive {
			deg++
		}
	}
	return deg
}

// Dist returns the Euclidean distance between nodes u and v.
func (net *Network) Dist(u, v NodeID) float64 {
	return geom.Dist(net.Nodes[u].Pos, net.Nodes[v].Pos)
}

// InRange reports whether u and v are within radio range (u != v).
func (net *Network) InRange(u, v NodeID) bool {
	if u == v {
		return false
	}
	return geom.Dist2(net.Nodes[u].Pos, net.Nodes[v].Pos) <= net.Radius*net.Radius
}

// AliveIDs returns the ids of all alive nodes.
func (net *Network) AliveIDs() []NodeID {
	out := make([]NodeID, 0, len(net.Nodes))
	for _, n := range net.Nodes {
		if n.Alive {
			out = append(out, n.ID)
		}
	}
	return out
}

// Positions returns a copy of all node positions, indexed by NodeID.
func (net *Network) Positions() []geom.Point {
	out := make([]geom.Point, len(net.Nodes))
	for i, n := range net.Nodes {
		out[i] = n.Pos
	}
	return out
}

// PathLength returns the total Euclidean length of the node path.
func (net *Network) PathLength(path []NodeID) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		total += net.Dist(path[i-1], path[i])
	}
	return total
}

// EdgeCount returns |E| over alive nodes. Allocation-free.
func (net *Network) EdgeCount() int {
	total := 0
	for _, n := range net.Nodes {
		if !n.Alive {
			continue
		}
		total += net.Degree(n.ID)
	}
	return total / 2
}

// AvgDegree returns the mean degree over alive nodes (0 for an empty
// net). Allocation-free.
func (net *Network) AvgDegree() float64 {
	alive := 0
	total := 0
	for _, n := range net.Nodes {
		if !n.Alive {
			continue
		}
		alive++
		total += net.Degree(n.ID)
	}
	if alive == 0 {
		return 0
	}
	return float64(total) / float64(alive)
}
