//go:build !race

package topo

// raceEnabled reports whether the race detector is compiled in; the
// allocation pins skip under it (sync.Pool intentionally drops puts).
const raceEnabled = false
