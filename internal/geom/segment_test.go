package geom

import (
	"math"
	"testing"
)

func TestOrient(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Point
		want    Orientation
	}{
		{name: "ccw", a: Pt(0, 0), b: Pt(1, 0), c: Pt(0, 1), want: CounterClockwise},
		{name: "cw", a: Pt(0, 0), b: Pt(0, 1), c: Pt(1, 0), want: Clockwise},
		{name: "collinear", a: Pt(0, 0), b: Pt(1, 1), c: Pt(2, 2), want: Collinear},
		{name: "coincident", a: Pt(1, 1), b: Pt(1, 1), c: Pt(2, 2), want: Collinear},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Orient(tt.a, tt.b, tt.c); got != tt.want {
				t.Errorf("Orient = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
		proper     bool
	}{
		{name: "X crossing", a: Pt(0, 0), b: Pt(2, 2), c: Pt(0, 2), d: Pt(2, 0), want: true, proper: true},
		{name: "disjoint parallel", a: Pt(0, 0), b: Pt(1, 0), c: Pt(0, 1), d: Pt(1, 1), want: false, proper: false},
		{name: "shared endpoint", a: Pt(0, 0), b: Pt(1, 1), c: Pt(1, 1), d: Pt(2, 0), want: true, proper: false},
		{name: "T junction", a: Pt(0, 0), b: Pt(2, 0), c: Pt(1, 0), d: Pt(1, 1), want: true, proper: false},
		{name: "collinear overlap", a: Pt(0, 0), b: Pt(2, 0), c: Pt(1, 0), d: Pt(3, 0), want: true, proper: false},
		{name: "collinear disjoint", a: Pt(0, 0), b: Pt(1, 0), c: Pt(2, 0), d: Pt(3, 0), want: false, proper: false},
		{name: "near miss", a: Pt(0, 0), b: Pt(1, 0), c: Pt(0.5, 0.01), d: Pt(0.5, 1), want: false, proper: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsIntersect(tt.a, tt.b, tt.c, tt.d); got != tt.want {
				t.Errorf("SegmentsIntersect = %v, want %v", got, tt.want)
			}
			if got := SegmentsProperlyCross(tt.a, tt.b, tt.c, tt.d); got != tt.proper {
				t.Errorf("SegmentsProperlyCross = %v, want %v", got, tt.proper)
			}
			// Symmetry in segment order.
			if got := SegmentsIntersect(tt.c, tt.d, tt.a, tt.b); got != tt.want {
				t.Errorf("SegmentsIntersect (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSideOfRay(t *testing.T) {
	origin, through := Pt(0, 0), Pt(1, 1)
	if got := SideOfRay(origin, through, Pt(0, 5)); got != CounterClockwise {
		t.Errorf("point left of ray: got %v", got)
	}
	if got := SideOfRay(origin, through, Pt(5, 0)); got != Clockwise {
		t.Errorf("point right of ray: got %v", got)
	}
	if got := SideOfRay(origin, through, Pt(3, 3)); got != Collinear {
		t.Errorf("point on ray: got %v", got)
	}
}

func TestDistPointSegment(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Point
		want    float64
	}{
		{name: "perpendicular foot", p: Pt(1, 1), a: Pt(0, 0), b: Pt(2, 0), want: 1},
		{name: "beyond a", p: Pt(-3, 4), a: Pt(0, 0), b: Pt(2, 0), want: 5},
		{name: "beyond b", p: Pt(5, 4), a: Pt(0, 0), b: Pt(2, 0), want: 5},
		{name: "degenerate segment", p: Pt(3, 4), a: Pt(0, 0), b: Pt(0, 0), want: 5},
		{name: "on segment", p: Pt(1, 0), a: Pt(0, 0), b: Pt(2, 0), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DistPointSegment(tt.p, tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DistPointSegment = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := FromCorners(Pt(2, 2), Pt(4, 4))
	tests := []struct {
		name string
		a, b Point
		want bool
	}{
		{name: "crosses through", a: Pt(0, 3), b: Pt(6, 3), want: true},
		{name: "endpoint inside", a: Pt(3, 3), b: Pt(10, 10), want: true},
		{name: "fully inside", a: Pt(2.5, 2.5), b: Pt(3.5, 3.5), want: true},
		{name: "touches corner", a: Pt(0, 0), b: Pt(2, 2), want: true},
		{name: "misses entirely", a: Pt(0, 0), b: Pt(1, 5), want: false},
		{name: "parallel outside", a: Pt(0, 5), b: Pt(6, 5), want: false},
		{name: "clips one edge", a: Pt(1, 1), b: Pt(3, 2.5), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentIntersectsRect(tt.a, tt.b, r); got != tt.want {
				t.Errorf("SegmentIntersectsRect(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			// Symmetric in segment direction.
			if got := SegmentIntersectsRect(tt.b, tt.a, r); got != tt.want {
				t.Errorf("reversed segment differs")
			}
		})
	}
}

func TestPerpBisectorIntersection(t *testing.T) {
	// Circumcenter of a right triangle is the hypotenuse midpoint.
	c, ok := PerpBisectorIntersection(Pt(0, 0), Pt(2, 0), Pt(0, 2))
	if !ok {
		t.Fatal("expected a circumcenter")
	}
	if !c.Eq(Pt(1, 1), 1e-9) {
		t.Errorf("circumcenter = %v, want (1,1)", c)
	}
	// Equidistance property.
	for _, p := range []Point{Pt(0, 0), Pt(2, 0), Pt(0, 2)} {
		if math.Abs(Dist(c, p)-math.Sqrt2) > 1e-9 {
			t.Errorf("circumcenter not equidistant from %v", p)
		}
	}
	if _, ok := PerpBisectorIntersection(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points should have no circumcenter")
	}
}
