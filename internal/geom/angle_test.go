package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAngle(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{name: "east", a: Pt(0, 0), b: Pt(1, 0), want: 0},
		{name: "north", a: Pt(0, 0), b: Pt(0, 5), want: math.Pi / 2},
		{name: "west", a: Pt(0, 0), b: Pt(-2, 0), want: math.Pi},
		{name: "south", a: Pt(1, 1), b: Pt(1, 0), want: 3 * math.Pi / 2},
		{name: "ne diagonal", a: Pt(0, 0), b: Pt(1, 1), want: math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Angle(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("Angle(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestNormAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{TwoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-TwoPi - 0.25, TwoPi - 0.25},
	}
	for _, tt := range tests {
		if got := NormAngle(tt.in); !almostEq(got, tt.want) {
			t.Errorf("NormAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestDeltas(t *testing.T) {
	if got := CCWDelta(0, math.Pi/2); !almostEq(got, math.Pi/2) {
		t.Errorf("CCWDelta(0, π/2) = %v", got)
	}
	if got := CWDelta(0, math.Pi/2); !almostEq(got, 3*math.Pi/2) {
		t.Errorf("CWDelta(0, π/2) = %v", got)
	}
	if got := CCWDelta(3*math.Pi/2, 0); !almostEq(got, math.Pi/2) {
		t.Errorf("CCWDelta wrap = %v", got)
	}

	// CCW + CW deltas of distinct angles sum to a full turn.
	prop := func(a, b float64) bool {
		fa, fb := NormAngle(a), NormAngle(b)
		if almostEq(fa, fb) {
			return true
		}
		return almostEq(CCWDelta(fa, fb)+CWDelta(fa, fb), TwoPi)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("delta complement: %v", err)
	}
}

func TestAngleBetween(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Point
		want    float64
	}{
		{name: "right angle", p: Pt(0, 0), a: Pt(1, 0), b: Pt(0, 1), want: math.Pi / 2},
		{name: "straight", p: Pt(0, 0), a: Pt(1, 0), b: Pt(-1, 0), want: math.Pi},
		{name: "same ray", p: Pt(0, 0), a: Pt(1, 0), b: Pt(2, 0), want: 0},
		{name: "degenerate", p: Pt(0, 0), a: Pt(0, 0), b: Pt(1, 0), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AngleBetween(tt.p, tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("AngleBetween = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInCCWInterval(t *testing.T) {
	tests := []struct {
		name       string
		t0, lo, hi float64
		want       bool
	}{
		{name: "inside simple", t0: 1, lo: 0.5, hi: 2, want: true},
		{name: "below", t0: 0.25, lo: 0.5, hi: 2, want: false},
		{name: "wrapping inside", t0: 0.1, lo: 6, hi: 1, want: true},
		{name: "wrapping outside", t0: 3, lo: 6, hi: 1, want: false},
		{name: "endpoint lo", t0: 0.5, lo: 0.5, hi: 2, want: true},
		{name: "endpoint hi", t0: 2, lo: 0.5, hi: 2, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InCCWInterval(tt.t0, tt.lo, tt.hi); got != tt.want {
				t.Errorf("InCCWInterval(%v, %v, %v) = %v, want %v", tt.t0, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}
