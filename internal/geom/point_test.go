package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{name: "add", got: Pt(1, 2).Add(Pt(3, -4)), want: Pt(4, -2)},
		{name: "sub", got: Pt(1, 2).Sub(Pt(3, -4)), want: Pt(-2, 6)},
		{name: "scale", got: Pt(1.5, -2).Scale(2), want: Pt(3, -4)},
		{name: "midpoint", got: Midpoint(Pt(0, 0), Pt(4, 6)), want: Pt(2, 3)},
		{name: "lerp half", got: Lerp(Pt(0, 0), Pt(10, -2), 0.5), want: Pt(5, -1)},
		{name: "lerp zero", got: Lerp(Pt(3, 4), Pt(10, -2), 0), want: Pt(3, 4)},
		{name: "lerp one", got: Lerp(Pt(3, 4), Pt(10, -2), 1), want: Pt(10, -2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Eq(tt.want, 1e-12) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{name: "zero", a: Pt(1, 1), b: Pt(1, 1), want: 0},
		{name: "axis", a: Pt(0, 0), b: Pt(3, 0), want: 3},
		{name: "345", a: Pt(0, 0), b: Pt(3, 4), want: 5},
		{name: "negative", a: Pt(-1, -1), b: Pt(2, 3), want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := Dist2(tt.a, tt.b); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Errorf("Dist2(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by float64) bool {
		// Bound inputs: near-max float64 coordinates overflow to +Inf,
		// and Inf-Inf is NaN.
		bound := func(v float64) float64 { return math.Mod(v, 1e9) }
		a, b := Pt(bound(ax), bound(ay)), Pt(bound(bx), bound(by))
		return math.Abs(Dist(a, b)-Dist(b, a)) < 1e-9
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("distance not symmetric: %v", err)
	}

	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound inputs: huge magnitudes overflow the inequality's epsilon.
		bound := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Pt(bound(ax), bound(ay))
		b := Pt(bound(bx), bound(by))
		c := Pt(bound(cx), bound(cy))
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality violated: %v", err)
	}
}

func TestCrossSign(t *testing.T) {
	// +X crossed into +Y is positive (counter-clockwise).
	if c := Pt(1, 0).Cross(Pt(0, 1)); c <= 0 {
		t.Errorf("Cross(+X, +Y) = %v, want > 0", c)
	}
	if c := Pt(0, 1).Cross(Pt(1, 0)); c >= 0 {
		t.Errorf("Cross(+Y, +X) = %v, want < 0", c)
	}
}
