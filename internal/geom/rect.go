package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle stored in normalized form
// (Min.X <= Max.X and Min.Y <= Max.Y).
//
// The paper writes [x1:x2, y1:y2] for the rectangle with corners (x1,y1),
// (x1,y2), (x2,y2), (x2,y1); FromCorners accepts corners in any order and
// normalizes.
type Rect struct {
	Min, Max Point
}

// FromCorners returns the normalized rectangle spanned by two opposite
// corners given in any order. This matches the paper's [xu:xd, yu:yd]
// request-zone notation, where either corner may dominate.
func FromCorners(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f:%.2f, %.2f:%.2f]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsStrict reports whether p lies strictly inside r.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y
}

// Width returns Max.X - Min.X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns Max.Y - Min.Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the perimeter of r.
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the center point of r.
func (r Rect) Center() Point { return Midpoint(r.Min, r.Max) }

// Empty reports whether r has zero (or negative, i.e. unnormalized) extent
// in either dimension.
func (r Rect) Empty() bool { return r.Max.X <= r.Min.X || r.Max.Y <= r.Min.Y }

// Degenerate reports whether r collapses to a point or a line segment.
func (r Rect) Degenerate() bool { return r.Width() == 0 || r.Height() == 0 }

// Inflate returns r grown by m on every side. A negative m shrinks the
// rectangle; the result is re-normalized if it inverts.
func (r Rect) Inflate(m float64) Rect {
	return FromCorners(
		Point{X: r.Min.X - m, Y: r.Min.Y - m},
		Point{X: r.Max.X + m, Y: r.Max.Y + m},
	)
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, s.Min.X), Y: math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, s.Max.X), Y: math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersect returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{X: math.Max(r.Min.X, s.Min.X), Y: math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{X: math.Min(r.Max.X, s.Max.X), Y: math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Min.X > out.Max.X || out.Min.Y > out.Max.Y {
		return Rect{}, false
	}
	return out, true
}

// Overlaps reports whether r and s share any point (boundary inclusive).
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// DistTo returns the Euclidean distance from p to the rectangle (zero when
// p is inside).
func (r Rect) DistTo(p Point) float64 { return Dist(p, r.Clamp(p)) }

// Corners returns the four corners of r in counter-clockwise order starting
// at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{X: r.Max.X, Y: r.Min.Y},
		r.Max,
		{X: r.Min.X, Y: r.Max.Y},
	}
}
