package geom

import "sort"

// ConvexHullIndices returns the indices of the points on the convex hull of
// pts, in counter-clockwise order starting from the lexicographically
// smallest point. Collinear points on the hull boundary are excluded
// (strict hull). Degenerate inputs (fewer than 3 distinct points, or all
// collinear) return all distinct extreme indices.
//
// The paper builds the "edge of networks" for the interest area with "the
// hull algorithm"; this is that algorithm (Andrew's monotone chain,
// O(n log n)).
func ConvexHullIndices(pts []Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	// Deduplicate coincident points so they cannot break the turn test.
	uniq := idx[:0]
	for _, i := range idx {
		if len(uniq) == 0 || pts[uniq[len(uniq)-1]] != pts[i] {
			uniq = append(uniq, i)
		}
	}
	idx = uniq
	if len(idx) < 3 {
		out := make([]int, len(idx))
		copy(out, idx)
		return out
	}

	build := func(order []int) []int {
		var chain []int
		for _, i := range order {
			for len(chain) >= 2 &&
				Orient(pts[chain[len(chain)-2]], pts[chain[len(chain)-1]], pts[i]) != CounterClockwise {
				chain = chain[:len(chain)-1]
			}
			chain = append(chain, i)
		}
		return chain
	}

	lower := build(idx)
	rev := make([]int, len(idx))
	for i, v := range idx {
		rev[len(idx)-1-i] = v
	}
	upper := build(rev)

	// Concatenate, dropping the duplicated endpoints.
	hull := make([]int, 0, len(lower)+len(upper)-2)
	hull = append(hull, lower[:len(lower)-1]...)
	hull = append(hull, upper[:len(upper)-1]...)
	return hull
}

// ConvexHull returns the hull points themselves, CCW order.
func ConvexHull(pts []Point) []Point {
	ids := ConvexHullIndices(pts)
	out := make([]Point, len(ids))
	for i, id := range ids {
		out[i] = pts[id]
	}
	return out
}

// PointInConvexPolygon reports whether p lies inside or on the boundary of
// the convex polygon poly given in CCW order.
func PointInConvexPolygon(p Point, poly []Point) bool {
	n := len(poly)
	if n == 0 {
		return false
	}
	if n == 1 {
		return poly[0].Eq(p, orientationEps)
	}
	if n == 2 {
		return Orient(poly[0], poly[1], p) == Collinear && onSegment(poly[0], poly[1], p)
	}
	for i := 0; i < n; i++ {
		if Orient(poly[i], poly[(i+1)%n], p) == Clockwise {
			return false
		}
	}
	return true
}

// PolygonArea returns the signed area of the polygon (positive for CCW).
func PolygonArea(poly []Point) float64 {
	var sum float64
	n := len(poly)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += poly[i].Cross(poly[j])
	}
	return sum / 2
}
