package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZoneTypeOf(t *testing.T) {
	u := Pt(10, 10)
	tests := []struct {
		name string
		d    Point
		want ZoneType
	}{
		{name: "NE interior", d: Pt(15, 14), want: Zone1},
		{name: "NW interior", d: Pt(4, 14), want: Zone2},
		{name: "SW interior", d: Pt(4, 2), want: Zone3},
		{name: "SE interior", d: Pt(15, 2), want: Zone4},
		{name: "due east", d: Pt(15, 10), want: Zone1},
		{name: "due north", d: Pt(10, 14), want: Zone1},
		{name: "due west", d: Pt(4, 10), want: Zone2},
		{name: "due south", d: Pt(10, 4), want: Zone4},
		{name: "coincident", d: Pt(10, 10), want: Zone1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ZoneTypeOf(u, tt.d); got != tt.want {
				t.Errorf("ZoneTypeOf(%v, %v) = %v, want %v", u, tt.d, got, tt.want)
			}
		})
	}
}

func TestZoneOpposite(t *testing.T) {
	wants := map[ZoneType]ZoneType{Zone1: Zone3, Zone2: Zone4, Zone3: Zone1, Zone4: Zone2}
	for z, want := range wants {
		if got := z.Opposite(); got != want {
			t.Errorf("%v.Opposite() = %v, want %v", z, got, want)
		}
		if got := z.Opposite().Opposite(); got != z {
			t.Errorf("double opposite of %v = %v", z, got)
		}
	}
}

func TestZoneValidString(t *testing.T) {
	for _, z := range AllZones {
		if !z.Valid() {
			t.Errorf("%v not valid", z)
		}
		if z.String() == "" {
			t.Errorf("empty String for %v", z)
		}
	}
	if ZoneType(0).Valid() || ZoneType(5).Valid() {
		t.Error("out-of-range zone type reported valid")
	}
	if got := ZoneType(7).String(); got != "Z?(7)" {
		t.Errorf("ZoneType(7).String() = %q", got)
	}
}

// Every point other than u lies in exactly one forwarding zone of u, and
// that zone agrees with ZoneTypeOf. This partition property is what makes
// the four-type safety tuple well defined.
func TestForwardingZonePartition(t *testing.T) {
	prop := func(ux, uy, px, py float64) bool {
		u, p := Pt(ux, uy), Pt(px, py)
		if u == p {
			for _, z := range AllZones {
				if InForwardingZone(u, z, p) {
					return false
				}
			}
			return true
		}
		count := 0
		var member ZoneType
		for _, z := range AllZones {
			if InForwardingZone(u, z, p) {
				count++
				member = z
			}
		}
		return count == 1 && member == ZoneTypeOf(u, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("forwarding zones do not partition the plane: %v", err)
	}
}

func TestRequestZone(t *testing.T) {
	u, d := Pt(5, 9), Pt(1, 2)
	r := RequestZone(u, d)
	if r != FromCorners(Pt(1, 2), Pt(5, 9)) {
		t.Errorf("RequestZone = %v", r)
	}
	if !InRequestZone(u, d, Pt(3, 5)) {
		t.Error("interior point not in request zone")
	}
	if InRequestZone(u, d, u) {
		t.Error("u must not be in its own request zone")
	}
	if !InRequestZone(u, d, d) {
		t.Error("destination must be in the request zone")
	}
	if InRequestZone(u, d, Pt(6, 5)) {
		t.Error("point outside rectangle accepted")
	}
}

// Advancing inside a request zone shrinks it: Z(v,d) ⊆ Z(u,d) for any
// v ∈ Z(u,d). This is the loop-freedom argument for the greedy phase.
func TestRequestZoneMonotone(t *testing.T) {
	prop := func(ux, uy, dx, dy, t1, t2 float64) bool {
		// Bound coordinates: astronomically large values overflow Width().
		bound := func(v float64) float64 { return math.Mod(v, 1e6) }
		u, d := Pt(bound(ux), bound(uy)), Pt(bound(dx), bound(dy))
		z := RequestZone(u, d)
		// Build a point inside Z(u,d) from two unit interval parameters.
		frac := func(v float64) float64 {
			v = math.Mod(v, 1)
			if v < 0 {
				v++
			}
			return v
		}
		v := Pt(z.Min.X+frac(t1)*z.Width(), z.Min.Y+frac(t2)*z.Height())
		zv := RequestZone(v, d)
		return z.Contains(zv.Min) && z.Contains(zv.Max)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("request zone not monotone: %v", err)
	}
}
