package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromCornersNormalizes(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
	}{
		{name: "already normal", a: Pt(0, 0), b: Pt(2, 3)},
		{name: "swapped x", a: Pt(2, 0), b: Pt(0, 3)},
		{name: "swapped y", a: Pt(0, 3), b: Pt(2, 0)},
		{name: "swapped both", a: Pt(2, 3), b: Pt(0, 0)},
	}
	want := Rect{Min: Pt(0, 0), Max: Pt(2, 3)}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromCorners(tt.a, tt.b); got != want {
				t.Errorf("FromCorners(%v, %v) = %v, want %v", tt.a, tt.b, got, want)
			}
		})
	}
}

func TestRectContains(t *testing.T) {
	r := FromCorners(Pt(0, 0), Pt(10, 5))
	tests := []struct {
		name   string
		p      Point
		want   bool
		strict bool
	}{
		{name: "center", p: Pt(5, 2.5), want: true, strict: true},
		{name: "corner", p: Pt(0, 0), want: true, strict: false},
		{name: "edge", p: Pt(10, 3), want: true, strict: false},
		{name: "outside x", p: Pt(10.01, 3), want: false, strict: false},
		{name: "outside y", p: Pt(5, -0.01), want: false, strict: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
			if got := r.ContainsStrict(tt.p); got != tt.strict {
				t.Errorf("ContainsStrict(%v) = %v, want %v", tt.p, got, tt.strict)
			}
		})
	}
}

func TestRectGeometry(t *testing.T) {
	r := FromCorners(Pt(1, 2), Pt(4, 6))
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %v, want 3", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height = %v, want 4", got)
	}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Perimeter(); got != 14 {
		t.Errorf("Perimeter = %v, want 14", got)
	}
	if got := r.Center(); got != Pt(2.5, 4) {
		t.Errorf("Center = %v, want (2.5, 4)", got)
	}
	if r.Empty() || r.Degenerate() {
		t.Errorf("rect %v unexpectedly empty or degenerate", r)
	}
	if !FromCorners(Pt(1, 1), Pt(1, 5)).Degenerate() {
		t.Error("line segment rect should be degenerate")
	}
}

func TestRectInflateUnionIntersect(t *testing.T) {
	r := FromCorners(Pt(0, 0), Pt(2, 2))
	s := FromCorners(Pt(1, 1), Pt(4, 3))

	if got, want := r.Inflate(1), FromCorners(Pt(-1, -1), Pt(3, 3)); got != want {
		t.Errorf("Inflate = %v, want %v", got, want)
	}
	if got, want := r.Union(s), FromCorners(Pt(0, 0), Pt(4, 3)); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	inter, ok := r.Intersect(s)
	if !ok || inter != FromCorners(Pt(1, 1), Pt(2, 2)) {
		t.Errorf("Intersect = %v ok=%v, want [1:2,1:2] true", inter, ok)
	}
	if _, ok := r.Intersect(FromCorners(Pt(5, 5), Pt(6, 6))); ok {
		t.Error("disjoint rects reported as intersecting")
	}
	if !r.Overlaps(s) || r.Overlaps(FromCorners(Pt(5, 5), Pt(6, 6))) {
		t.Error("Overlaps misclassified")
	}
}

func TestRectClampDist(t *testing.T) {
	r := FromCorners(Pt(0, 0), Pt(2, 2))
	tests := []struct {
		name string
		p    Point
		want Point
		dist float64
	}{
		{name: "inside", p: Pt(1, 1), want: Pt(1, 1), dist: 0},
		{name: "left", p: Pt(-3, 1), want: Pt(0, 1), dist: 3},
		{name: "corner", p: Pt(5, 6), want: Pt(2, 2), dist: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Clamp(tt.p); got != tt.want {
				t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
			}
			if got := r.DistTo(tt.p); math.Abs(got-tt.dist) > 1e-12 {
				t.Errorf("DistTo(%v) = %v, want %v", tt.p, got, tt.dist)
			}
		})
	}
}

func TestRectProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	// Union contains both inputs' corners.
	unionProp := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := FromCorners(Pt(ax, ay), Pt(bx, by))
		s := FromCorners(Pt(cx, cy), Pt(dx, dy))
		u := r.Union(s)
		for _, c := range r.Corners() {
			if !u.Contains(c) {
				return false
			}
		}
		for _, c := range s.Corners() {
			if !u.Contains(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(unionProp, cfg); err != nil {
		t.Errorf("union containment: %v", err)
	}

	// Clamp result is always contained and idempotent.
	clampProp := func(ax, ay, bx, by, px, py float64) bool {
		r := FromCorners(Pt(ax, ay), Pt(bx, by))
		c := r.Clamp(Pt(px, py))
		return r.Contains(c) && r.Clamp(c) == c
	}
	if err := quick.Check(clampProp, cfg); err != nil {
		t.Errorf("clamp: %v", err)
	}
}

func TestRectCornersCCW(t *testing.T) {
	r := FromCorners(Pt(0, 0), Pt(2, 3))
	c := r.Corners()
	if got := PolygonArea(c[:]); got <= 0 {
		t.Errorf("corners not CCW: signed area %v", got)
	}
}
