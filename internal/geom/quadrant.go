package geom

import "fmt"

// ZoneType identifies one of the four request-zone / forwarding-zone types
// of the paper (§3). Type i corresponds to quadrant i of the plane around
// the current node: 1 = Northeast, 2 = Northwest, 3 = Southwest,
// 4 = Southeast.
type ZoneType int

// Zone types are 1-based to match the paper's Z1..Z4 / Q1..Q4 notation.
const (
	Zone1 ZoneType = iota + 1 // quadrant I, Northeast
	Zone2                     // quadrant II, Northwest
	Zone3                     // quadrant III, Southwest
	Zone4                     // quadrant IV, Southeast
)

// NumZones is the number of zone types.
const NumZones = 4

// AllZones lists the four zone types in order.
var AllZones = [NumZones]ZoneType{Zone1, Zone2, Zone3, Zone4}

// String implements fmt.Stringer.
func (z ZoneType) String() string {
	switch z {
	case Zone1:
		return "Z1(NE)"
	case Zone2:
		return "Z2(NW)"
	case Zone3:
		return "Z3(SW)"
	case Zone4:
		return "Z4(SE)"
	default:
		return fmt.Sprintf("Z?(%d)", int(z))
	}
}

// Valid reports whether z is one of the four defined zone types.
func (z ZoneType) Valid() bool { return z >= Zone1 && z <= Zone4 }

// Opposite returns the zone type of u as seen from d when d sees u with
// type z: the paper's k' = (k+2) Mod 4 mapping (1↔3, 2↔4).
func (z ZoneType) Opposite() ZoneType {
	return ZoneType((int(z)+1)%NumZones + 1)
}

// ZoneTypeOf returns the type of the request zone of node u with respect to
// destination d, i.e. the quadrant of d relative to u. Boundary convention:
// dx >= 0 counts as East, dy >= 0 counts as North, so a destination due
// east is type 1 and due west is type 3. ZoneTypeOf(u, u) returns Zone1.
func ZoneTypeOf(u, d Point) ZoneType {
	dx := d.X - u.X
	dy := d.Y - u.Y
	switch {
	case dx >= 0 && dy >= 0:
		return Zone1
	case dx < 0 && dy >= 0:
		return Zone2
	case dx < 0 && dy < 0:
		return Zone3
	default:
		return Zone4
	}
}

// InForwardingZone reports whether p lies in the type-z forwarding zone
// Q_z(u): the closed quadrant of type z anchored at u, excluding u itself.
// The boundary convention matches ZoneTypeOf, so every p != u lies in
// exactly one forwarding zone of u.
func InForwardingZone(u Point, z ZoneType, p Point) bool {
	if p == u {
		return false
	}
	return ZoneTypeOf(u, p) == z
}

// RequestZone returns the paper's request zone Z(u, d) = [xu:xd, yu:yd],
// the axis-aligned rectangle with u and d at opposite corners (LAR scheme 1).
func RequestZone(u, d Point) Rect { return FromCorners(u, d) }

// InRequestZone reports whether p lies in Z(u, d), excluding u itself.
// Any such p weakly advances toward d in both coordinates, which makes the
// greedy phase of LGF loop-free.
func InRequestZone(u, d, p Point) bool {
	if p == u {
		return false
	}
	return RequestZone(u, d).Contains(p)
}
