package geom

import "math"

// Orientation classifies the turn a→b→c.
type Orientation int

// Orientation values. Collinear is zero so the zero value is the degenerate
// case.
const (
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
	Clockwise        Orientation = -1
)

// orientationEps absorbs floating-point noise in cross products of
// coordinates on the order of the deployment field (hundreds of meters).
const orientationEps = 1e-9

// Orient returns the orientation of the ordered triple (a, b, c).
func Orient(a, b, c Point) Orientation {
	cross := b.Sub(a).Cross(c.Sub(a))
	switch {
	case cross > orientationEps:
		return CounterClockwise
	case cross < -orientationEps:
		return Clockwise
	default:
		return Collinear
	}
}

// onSegment reports whether collinear point p lies on segment ab.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-orientationEps <= p.X && p.X <= math.Max(a.X, b.X)+orientationEps &&
		math.Min(a.Y, b.Y)-orientationEps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+orientationEps
}

// SegmentsIntersect reports whether closed segments ab and cd share at
// least one point (proper crossings and touching endpoints both count).
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := Orient(a, b, c)
	o2 := Orient(a, b, d)
	o3 := Orient(c, d, a)
	o4 := Orient(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	switch {
	case o1 == Collinear && onSegment(a, b, c):
		return true
	case o2 == Collinear && onSegment(a, b, d):
		return true
	case o3 == Collinear && onSegment(c, d, a):
		return true
	case o4 == Collinear && onSegment(c, d, b):
		return true
	}
	return false
}

// SegmentsProperlyCross reports whether ab and cd cross at a single interior
// point of both segments (shared endpoints do not count). This is the test
// used for planarity checking, where adjacent graph edges legitimately share
// endpoints.
func SegmentsProperlyCross(a, b, c, d Point) bool {
	o1 := Orient(a, b, c)
	o2 := Orient(a, b, d)
	o3 := Orient(c, d, a)
	o4 := Orient(c, d, b)
	return o1 != o2 && o3 != o4 &&
		o1 != Collinear && o2 != Collinear && o3 != Collinear && o4 != Collinear
}

// SideOfRay returns which side of the directed ray origin→through the point
// p falls on: CounterClockwise (left), Clockwise (right), or Collinear.
// It is the predicate behind the critical/forbidden-region split, where
// Q_i(v) is divided by the ray from v through (x_{v(1)}, y_{v(2)}).
func SideOfRay(origin, through, p Point) Orientation {
	return Orient(origin, through, p)
}

// DistPointSegment returns the distance from p to the closest point of
// segment ab.
func DistPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	den := ab.Norm2()
	if den == 0 {
		return Dist(p, a)
	}
	t := p.Sub(a).Dot(ab) / den
	t = math.Max(0, math.Min(1, t))
	return Dist(p, Lerp(a, b, t))
}

// SegmentIntersectsRect reports whether segment ab touches rectangle r
// (including when it lies entirely inside).
func SegmentIntersectsRect(a, b Point, r Rect) bool {
	if r.Contains(a) || r.Contains(b) {
		return true
	}
	c := r.Corners()
	for i := 0; i < 4; i++ {
		if SegmentsIntersect(a, b, c[i], c[(i+1)%4]) {
			return true
		}
	}
	return false
}

// PerpBisectorIntersection returns the point equidistant from a, b, and c
// (the circumcenter of the triangle abc), i.e. the intersection of the
// perpendicular bisectors of ab and ac. ok is false when the three points
// are (nearly) collinear and no finite circumcenter exists. This is the
// geometric core of the TENT rule of BOUNDHOLE.
func PerpBisectorIntersection(a, b, c Point) (center Point, ok bool) {
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	if math.Abs(d) < 1e-12 {
		return Point{}, false
	}
	a2 := a.Norm2()
	b2 := b.Norm2()
	c2 := c.Norm2()
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{X: ux, Y: uy}, true
}
