package geom

import (
	"math/rand/v2"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), // the square corners
		Pt(1, 1), Pt(0.5, 1.5), // interior
		Pt(1, 0), // collinear boundary point, excluded by strict hull
	}
	ids := ConvexHullIndices(pts)
	if len(ids) != 4 {
		t.Fatalf("hull size = %d, want 4 (got %v)", len(ids), ids)
	}
	onHull := map[int]bool{}
	for _, id := range ids {
		onHull[id] = true
	}
	for _, want := range []int{0, 1, 2, 3} {
		if !onHull[want] {
			t.Errorf("corner %d missing from hull %v", want, ids)
		}
	}
	hull := ConvexHull(pts)
	if PolygonArea(hull) <= 0 {
		t.Error("hull not CCW")
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want int
	}{
		{name: "empty", pts: nil, want: 0},
		{name: "single", pts: []Point{Pt(1, 1)}, want: 1},
		{name: "duplicate single", pts: []Point{Pt(1, 1), Pt(1, 1)}, want: 1},
		{name: "pair", pts: []Point{Pt(0, 0), Pt(1, 1)}, want: 2},
		{name: "collinear", pts: []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ids := ConvexHullIndices(tt.pts)
			if len(ids) != tt.want {
				t.Errorf("hull size = %d, want %d (%v)", len(ids), tt.want, ids)
			}
		})
	}
}

// Property: every input point is inside (or on) the hull polygon, and hull
// vertices are a subset of the input.
func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.IntN(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatalf("trial %d: degenerate hull for random points", trial)
		}
		for i, p := range pts {
			if !PointInConvexPolygon(p, hull) {
				t.Fatalf("trial %d: point %d %v outside its own hull", trial, i, p)
			}
		}
	}
}

func TestPointInConvexPolygon(t *testing.T) {
	tri := []Point{Pt(0, 0), Pt(4, 0), Pt(0, 4)}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{name: "inside", p: Pt(1, 1), want: true},
		{name: "vertex", p: Pt(0, 0), want: true},
		{name: "edge", p: Pt(2, 0), want: true},
		{name: "outside", p: Pt(3, 3), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PointInConvexPolygon(tt.p, tri); got != tt.want {
				t.Errorf("PointInConvexPolygon(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
	if PointInConvexPolygon(Pt(0, 0), nil) {
		t.Error("empty polygon contains nothing")
	}
	if !PointInConvexPolygon(Pt(1, 1), []Point{Pt(1, 1)}) {
		t.Error("single-point polygon should contain its point")
	}
	if !PointInConvexPolygon(Pt(1, 0), []Point{Pt(0, 0), Pt(2, 0)}) {
		t.Error("two-point polygon should contain segment points")
	}
}

func TestPolygonArea(t *testing.T) {
	sq := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := PolygonArea(sq); got != 4 {
		t.Errorf("area = %v, want 4", got)
	}
	// Reversed (CW) polygon has negative signed area.
	rev := []Point{Pt(0, 2), Pt(2, 2), Pt(2, 0), Pt(0, 0)}
	if got := PolygonArea(rev); got != -4 {
		t.Errorf("reversed area = %v, want -4", got)
	}
}
