// Package geom provides the computational-geometry primitives used across
// the WASN simulator: points and vectors in the plane, axis-aligned
// rectangles, quadrants and request zones, angular sweeps, segment
// intersection tests, and convex hulls.
//
// All coordinates are float64 meters in the deployment plane. The package
// has no dependencies beyond the standard library and is deterministic:
// no function reads global state.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the deployment plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by k about the origin.
func (p Point) Scale(k float64) Point { return Point{X: p.X * k, Y: p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed as
// vectors. It is positive when q is counter-clockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance |L(p)-L(q)| between p and q.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison form on hot paths.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the point halfway between p and q.
func Midpoint(p, q Point) Point { return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2} }

// Lerp linearly interpolates from p (t=0) to q (t=1).
func Lerp(p, q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q coincide to within eps in each coordinate.
func (p Point) Eq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}
