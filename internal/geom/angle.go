package geom

import "math"

// Angular helpers. Angles are radians in [0, 2π) measured counter-clockwise
// from the +X axis, matching the paper's ray-rotation descriptions ("rotate
// the ray ud counter-clockwise until the first untried node is hit").

// TwoPi is 2π, the full turn.
const TwoPi = 2 * math.Pi

// Angle returns the direction of the vector from a to b in [0, 2π).
func Angle(a, b Point) float64 {
	return NormAngle(math.Atan2(b.Y-a.Y, b.X-a.X))
}

// NormAngle maps any angle to [0, 2π). The angular hot paths (router
// sweeps, BOUNDHOLE walks, face steps) call this on differences of
// already-normalized bearings, which always land in (-2π, 2π) — for
// those math.Mod returns its argument unchanged, so the fast paths
// below are bit-identical to the Mod-based reduction while skipping
// its cost.
func NormAngle(t float64) float64 {
	if 0 <= t && t < TwoPi {
		return t
	}
	if -TwoPi <= t && t < 0 {
		return t + TwoPi
	}
	t = math.Mod(t, TwoPi)
	if t < 0 {
		t += TwoPi
	}
	return t
}

// CCWDelta returns how far a ray at angle `from` must rotate
// counter-clockwise to reach angle `to`, in [0, 2π).
func CCWDelta(from, to float64) float64 { return NormAngle(to - from) }

// CWDelta returns how far a ray at angle `from` must rotate clockwise to
// reach angle `to`, in [0, 2π).
func CWDelta(from, to float64) float64 { return NormAngle(from - to) }

// AngleBetween returns the unsigned angle at vertex p between rays p→a and
// p→b, in [0, π].
func AngleBetween(p, a, b Point) float64 {
	va := a.Sub(p)
	vb := b.Sub(p)
	na := va.Norm()
	nb := vb.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	c := va.Dot(vb) / (na * nb)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// InCCWInterval reports whether angle t lies in the counter-clockwise
// interval from lo to hi (inclusive of both endpoints). The interval may
// wrap around 0.
func InCCWInterval(t, lo, hi float64) bool {
	return CCWDelta(lo, t) <= CCWDelta(lo, hi)
}
