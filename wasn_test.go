package wasn

import (
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

func TestFacadeEndToEnd(t *testing.T) {
	dep, err := Deploy(FA, 450, 5)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Net() != dep.Net {
		t.Error("Net accessor wrong")
	}
	labels, _ := topo.Components(dep.Net)
	var src, dst NodeID = -1, -1
	for s := 0; s < dep.Net.N(); s++ {
		d := dep.Net.N() - 1 - s
		if s != d && labels[s] >= 0 && labels[s] == labels[d] {
			src, dst = NodeID(s), NodeID(d)
			break
		}
	}
	if src < 0 {
		t.Skip("no connected pair")
	}
	for _, alg := range sim.Algorithms() {
		res := sim.Route(alg, src, dst)
		if !res.Delivered {
			t.Errorf("%s failed: %v", alg, res.Reason)
		}
		if sim.Router(alg) == nil {
			t.Errorf("Router(%s) nil", alg)
		}
	}
	// Unknown algorithm degrades gracefully.
	if res := sim.Route(Algorithm("nope"), src, dst); res.Delivered {
		t.Error("unknown algorithm delivered")
	}
	if sim.Router(Algorithm("nope")) != nil {
		t.Error("unknown router non-nil")
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(nil); err == nil {
		t.Error("nil deployment accepted")
	}
	if _, err := NewSim(&Deployment{}); err == nil {
		t.Error("empty deployment accepted")
	}
}

// TestFacadeService checks the wasn.NewService wrappers: a service
// route must agree exactly with the same query against a hand-built Sim,
// and the cache/batch/stats plumbing must be reachable from the facade.
func TestFacadeService(t *testing.T) {
	svc := NewService()
	name, err := svc.Deploy("", DeploymentSpec{Model: FA, N: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(FA, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		t.Fatal(err)
	}
	ps := topo.RoutablePairs(dep.Net, 1, 80)
	if len(ps) == 0 {
		t.Skip("no connected pair")
	}
	src, dst := ps[0][0], ps[0][1]
	for _, alg := range ServiceAlgorithms() {
		got, _, err := svc.Route(name, alg, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Route(Algorithm(alg), src, dst)
		if got.Hops() != want.Hops() || got.Length != want.Length || got.Delivered != want.Delivered {
			t.Errorf("%s: service %+v != sim %+v", alg, got, want)
		}
	}
	if _, cached, _ := svc.Route(name, string(SLGF2), src, dst); !cached {
		t.Error("second facade route missed the cache")
	}
	res := svc.Batch([]RouteRequest{{Deployment: name, Algorithm: string(SLGF2), Src: src, Dst: dst}})
	if len(res) != 1 || !res[0].Delivered {
		t.Errorf("facade batch = %+v", res)
	}
	if st := svc.Stats(); st.Deployments != 1 || st.Routes == 0 {
		t.Errorf("facade stats = %+v", st)
	}
}

func TestRunFigure(t *testing.T) {
	out, err := RunFigure(6, IA, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "SLGF2") {
		t.Errorf("figure output missing content:\n%s", out)
	}
	if _, err := RunFigure(4, IA, 1, 3); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestSimFailMatchesFreshSim kills nodes through the facade's
// incremental repair and asserts every router answers exactly like a
// Sim built from scratch over the damaged topology.
func TestSimFailMatchesFreshSim(t *testing.T) {
	dep, err := Deploy(FA, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.RoutablePairs(dep.Net, 6, 60)
	if len(pairs) == 0 {
		t.Skip("no routable pairs")
	}
	endpoint := make(map[NodeID]bool)
	for _, p := range pairs {
		endpoint[p[0]], endpoint[p[1]] = true, true
	}
	var dead []NodeID
	for u := 0; len(dead) < 8; u += 29 {
		id := NodeID(u % dep.Net.N())
		if !endpoint[id] && dep.Net.Alive(id) {
			dead = append(dead, id)
		}
	}
	sim.Fail(dead...)
	sim.Fail(dead...) // idempotent: already-dead nodes are ignored

	refDep, err := Deploy(FA, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range dead {
		refDep.Net.SetAlive(u, false)
	}
	ref, err := NewSim(refDep)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range sim.Algorithms() {
		for _, p := range pairs {
			got := sim.Route(alg, p[0], p[1])
			want := ref.Route(alg, p[0], p[1])
			if got.Delivered != want.Delivered || got.Hops() != want.Hops() || got.Length != want.Length {
				t.Errorf("%s %v: repaired sim %+v, fresh sim %+v", alg, p, got, want)
			}
		}
	}
}

func TestSimMoveMatchesFreshSim(t *testing.T) {
	dep, err := Deploy(OB, 300, 33)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topo.RoutablePairs(dep.Net, 6, 40)
	if len(pairs) == 0 {
		t.Skip("no routable pairs")
	}
	// Drift a handful of nodes a few meters each; one mover is dead to
	// cover the liveness-orthogonal contract.
	var moves []Move
	for u := 0; len(moves) < 6; u += 41 {
		id := NodeID(u % dep.Net.N())
		p := dep.Net.Pos(id)
		moves = append(moves, Move{Node: id, X: p.X + 3.5, Y: p.Y - 2.5})
	}
	sim.Fail(moves[0].Node)
	if err := sim.Move(moves...); err != nil {
		t.Fatal(err)
	}
	if err := sim.Move(); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}

	refDep, err := Deploy(OB, 300, 33)
	if err != nil {
		t.Fatal(err)
	}
	refDep.Net.SetAlive(moves[0].Node, false)
	if _, err := refDep.Net.SetPositions(moves); err != nil {
		t.Fatal(err)
	}
	ref, err := NewSim(refDep)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range sim.Algorithms() {
		for _, p := range pairs {
			got := sim.Route(alg, p[0], p[1])
			want := ref.Route(alg, p[0], p[1])
			if got.Delivered != want.Delivered || got.Hops() != want.Hops() || got.Length != want.Length {
				t.Errorf("%s %v: moved sim %+v, fresh sim %+v", alg, p, got, want)
			}
		}
	}
}
