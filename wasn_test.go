package wasn

import (
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/topo"
)

func TestFacadeEndToEnd(t *testing.T) {
	dep, err := Deploy(FA, 450, 5)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(dep)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Net() != dep.Net {
		t.Error("Net accessor wrong")
	}
	labels, _ := topo.Components(dep.Net)
	var src, dst NodeID = -1, -1
	for s := 0; s < dep.Net.N(); s++ {
		d := dep.Net.N() - 1 - s
		if s != d && labels[s] >= 0 && labels[s] == labels[d] {
			src, dst = NodeID(s), NodeID(d)
			break
		}
	}
	if src < 0 {
		t.Skip("no connected pair")
	}
	for _, alg := range sim.Algorithms() {
		res := sim.Route(alg, src, dst)
		if !res.Delivered {
			t.Errorf("%s failed: %v", alg, res.Reason)
		}
		if sim.Router(alg) == nil {
			t.Errorf("Router(%s) nil", alg)
		}
	}
	// Unknown algorithm degrades gracefully.
	if res := sim.Route(Algorithm("nope"), src, dst); res.Delivered {
		t.Error("unknown algorithm delivered")
	}
	if sim.Router(Algorithm("nope")) != nil {
		t.Error("unknown router non-nil")
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(nil); err == nil {
		t.Error("nil deployment accepted")
	}
	if _, err := NewSim(&Deployment{}); err == nil {
		t.Error("empty deployment accepted")
	}
}

func TestRunFigure(t *testing.T) {
	out, err := RunFigure(6, IA, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "SLGF2") {
		t.Errorf("figure output missing content:\n%s", out)
	}
	if _, err := RunFigure(4, IA, 1, 3); err == nil {
		t.Error("unknown figure accepted")
	}
}
