// Package wasn reproduces "A Straightforward Path Routing in Wireless Ad
// Hoc Sensor Networks" (Jiang, Ma, Lou, Wu; IEEE ICDCS Workshops 2009) as
// a Go library: the SLGF2 safety-information routing, its baselines (GF
// with BOUNDHOLE boundaries, LGF, SLGF), the safety information model,
// and the full experiment harness regenerating the paper's Figs. 5-7.
//
// This root package is the facade a downstream user starts from:
//
//	dep, _ := wasn.Deploy(wasn.FA, 500, 42)
//	sim, _ := wasn.NewSim(dep)
//	res := sim.Route(wasn.SLGF2, src, dst)
//	fmt.Println(res.Hops(), res.Length)
//
// The building blocks live in internal packages (topo, safety, core,
// bound, planar, expt, ...) and are re-exported here through small
// wrappers; cmd/wasnsim regenerates every figure from the command line.
package wasn

import (
	"fmt"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/expt"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

// Model selects a deployment model of §5.
type Model = topo.DeployModel

// Deployment models: IA is ideal uniform placement, FA adds random
// forbidden areas (large holes).
const (
	IA = topo.ModelIA
	FA = topo.ModelFA
)

// Algorithm names a routing algorithm.
type Algorithm string

// The four §5 algorithms plus the extra baselines.
const (
	GF       Algorithm = "GF"
	LGF      Algorithm = "LGF"
	SLGF     Algorithm = "SLGF"
	SLGF2    Algorithm = "SLGF2"
	GPSR     Algorithm = "GPSR"
	IdealHop Algorithm = "Ideal-hops"
	IdealLen Algorithm = "Ideal-length"
)

// NodeID identifies a node.
type NodeID = topo.NodeID

// Result is a routing outcome.
type Result = core.Result

// Network is the deployed WASN graph.
type Network = topo.Network

// Deployment is a generated network plus its forbidden areas.
type Deployment = topo.Deployment

// Deploy generates one random network with the paper's parameters
// (200x200 m field, 20 m radio range) for the given model, node count,
// and seed.
func Deploy(model Model, n int, seed uint64) (*Deployment, error) {
	return topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
}

// Sim bundles one network with every prebuilt routing substrate: the
// safety information model, the BOUNDHOLE boundaries, and the Gabriel
// graph.
type Sim struct {
	Dep    *Deployment
	Safety *safety.Model

	routers map[Algorithm]core.Router
}

// NewSim builds all routing substrates over a deployment.
func NewSim(dep *Deployment) (*Sim, error) {
	if dep == nil || dep.Net == nil {
		return nil, fmt.Errorf("wasn: nil deployment")
	}
	net := dep.Net
	m := safety.Build(net)
	b := bound.FindHoles(net)
	g := planar.Build(net, planar.GabrielGraph)
	s := &Sim{
		Dep:    dep,
		Safety: m,
		routers: map[Algorithm]core.Router{
			GF:       core.NewGF(net, b),
			LGF:      core.NewLGF(net),
			SLGF:     core.NewSLGF(net, m),
			SLGF2:    core.NewSLGF2(net, m),
			GPSR:     core.NewGPSR(net, g),
			IdealHop: core.NewIdeal(net, core.IdealMinHop),
			IdealLen: core.NewIdeal(net, core.IdealMinLength),
		},
	}
	return s, nil
}

// Net returns the underlying network.
func (s *Sim) Net() *Network { return s.Dep.Net }

// Router returns the named router (nil for unknown names).
func (s *Sim) Router(alg Algorithm) core.Router { return s.routers[alg] }

// Route routes one packet with the named algorithm. Unknown algorithms
// return an undelivered result.
func (s *Sim) Route(alg Algorithm, src, dst NodeID) Result {
	r, ok := s.routers[alg]
	if !ok {
		return Result{Reason: core.DropNoCandidate}
	}
	return r.Route(src, dst)
}

// Algorithms lists the available algorithm names in the figure-legend
// order.
func (s *Sim) Algorithms() []Algorithm {
	return []Algorithm{GF, LGF, SLGF, SLGF2, GPSR, IdealHop, IdealLen}
}

// RunFigure regenerates one paper figure (5, 6, or 7) for the given
// model and returns the table as text. networks and pairs scale the
// sweep (the paper uses networks=100).
func RunFigure(figure int, model Model, networks, pairs int) (string, error) {
	var metric expt.Metric
	switch figure {
	case 5:
		metric = expt.MetricMaxHops
	case 6:
		metric = expt.MetricAvgHops
	case 7:
		metric = expt.MetricAvgLength
	default:
		return "", fmt.Errorf("wasn: unknown figure %d (want 5, 6, or 7)", figure)
	}
	sweep, err := expt.Run(expt.DefaultConfig(model, networks, pairs))
	if err != nil {
		return "", err
	}
	return sweep.Table(metric).Text(), nil
}
