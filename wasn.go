// Package wasn reproduces "A Straightforward Path Routing in Wireless Ad
// Hoc Sensor Networks" (Jiang, Ma, Lou, Wu; IEEE ICDCS Workshops 2009) as
// a Go library: the SLGF2 safety-information routing, its baselines (GF
// with BOUNDHOLE boundaries, LGF, SLGF), the safety information model,
// and the full experiment harness regenerating the paper's Figs. 5-7.
//
// This root package is the facade a downstream user starts from:
//
//	dep, _ := wasn.Deploy(wasn.FA, 500, 42)
//	sim, _ := wasn.NewSim(dep)
//	res := sim.Route(wasn.SLGF2, src, dst)
//	fmt.Println(res.Hops(), res.Length)
//
// The building blocks live in internal packages (topo, safety, core,
// bound, planar, expt, ...) and are re-exported here through small
// wrappers; cmd/wasnsim regenerates every figure from the command line.
//
// # Serving routes
//
// Beyond one-shot simulation, the package serves route queries as a
// long-lived concurrent service: a deployment registry of named
// (model, n, seed) deployments built lazily (deduplicated with
// singleflight), a sharded LRU route cache invalidated on topology
// mutations, and a batch engine fanning requests across a worker pool.
//
//	svc := wasn.NewService()
//	name, _ := svc.Deploy("", wasn.DeploymentSpec{Model: wasn.FA, N: 500, Seed: 42})
//	res, cached, _ := svc.Route(name, string(wasn.SLGF2), 3, 441)
//	_ = svc.Fail(name, []wasn.NodeID{17})   // kills node 17, invalidates cached routes
//	http.ListenAndServe(":8080", svc.Handler())
//
// Node failures, revivals, and position changes (Service.Fail,
// Service.Revive, Service.Move, Sim.Fail, Sim.Move) repair the routing
// substrates incrementally in place — work scales with the changed
// neighborhood, not the network — and are differentially tested (and
// fuzzed) to match a from-scratch rebuild.
//
// cmd/wasnd serves the same service over HTTP/JSON (/deploy, /route,
// /batch, /fail, /revive, /move, /stats) and ships a scenario-driven load
// mode (wasnd -load, internal/workload): open-loop and bursty arrival
// processes, uniform/Zipf/convergecast traffic matrices, and timed
// churn schedules, driven in-process or over HTTP, reporting latency
// percentiles and per-phase delivery; see cmd/wasnd/README.md for the
// endpoint reference and scenario format, and ARCHITECTURE.md at the
// repository root for the package graph, the substrate build/repair
// lifecycle, and the cache invalidation story.
//
// Capacity is located rather than guessed: RunSweep (wasnd -sweep,
// internal/sweep) runs a scenario at a ladder of offered rates and
// emits a CapacityCurve marking the capacity knee and the p99 cliff,
// and scenario runs can be recorded to a (src, dst, intended-at)
// trace and replayed bit-for-bit on another build (wasnd -record /
// -replay) — the substrate of the CI perf-regression gate.
package wasn

import (
	"fmt"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/expt"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/topo"
	"github.com/straightpath/wasn/internal/workload"
)

// Model selects a deployment model of §5.
type Model = topo.DeployModel

// Deployment models: IA is ideal uniform placement, FA adds random
// forbidden areas (large holes), OB scatters rectangular obstacles
// that nodes can neither occupy nor see through.
const (
	IA = topo.ModelIA
	FA = topo.ModelFA
	OB = topo.ModelOB
)

// Algorithm names a routing algorithm.
type Algorithm string

// The four §5 algorithms plus the extra baselines.
const (
	GF       Algorithm = "GF"
	LGF      Algorithm = "LGF"
	SLGF     Algorithm = "SLGF"
	SLGF2    Algorithm = "SLGF2"
	GPSR     Algorithm = "GPSR"
	IdealHop Algorithm = "Ideal-hops"
	IdealLen Algorithm = "Ideal-length"
)

// NodeID identifies a node.
type NodeID = topo.NodeID

// Move is one position update: node Node relocates to (X, Y).
type Move = topo.Move

// Result is a routing outcome.
type Result = core.Result

// Router routes single packets between nodes of one fixed network. Every
// router obtained from a Sim or Service is safe for concurrent use and
// routes with zero steady-state allocations; see the interface docs for
// the full concurrency and buffer-reuse (RouteInto) contract.
type Router = core.Router

// Network is the deployed WASN graph.
type Network = topo.Network

// Deployment is a generated network plus its forbidden areas.
type Deployment = topo.Deployment

// Deploy generates one random network with the paper's parameters
// (200x200 m field, 20 m radio range) for the given model, node count,
// and seed.
func Deploy(model Model, n int, seed uint64) (*Deployment, error) {
	return topo.Deploy(topo.DefaultDeployConfig(model, n, seed))
}

// Sim bundles one network with every prebuilt routing substrate: the
// safety information model, the BOUNDHOLE boundaries, and the Gabriel
// graph. The substrates are retained so Fail can repair them in place.
type Sim struct {
	Dep    *Deployment
	Safety *safety.Model

	bounds  *bound.Boundaries
	planarg *planar.Graph
	routers map[Algorithm]core.Router
}

// NewSim builds all routing substrates over a deployment. The three
// substrates (safety model, BOUNDHOLE boundaries, Gabriel graph) build
// concurrently, each internally parallel across GOMAXPROCS.
func NewSim(dep *Deployment) (*Sim, error) {
	if dep == nil || dep.Net == nil {
		return nil, fmt.Errorf("wasn: nil deployment")
	}
	net := dep.Net
	m, b, g := core.BuildSubstrates(net, true, true, true, nil)
	s := &Sim{
		Dep:     dep,
		Safety:  m,
		bounds:  b,
		planarg: g,
		routers: map[Algorithm]core.Router{
			GF:       core.NewGF(net, b),
			LGF:      core.NewLGF(net),
			SLGF:     core.NewSLGF(net, m),
			SLGF2:    core.NewSLGF2(net, m, core.WithPlanarGraph(g)),
			GPSR:     core.NewGPSR(net, g),
			IdealHop: core.NewIdeal(net, core.IdealMinHop),
			IdealLen: core.NewIdeal(net, core.IdealMinLength),
		},
	}
	return s, nil
}

// Fail kills the given nodes and repairs every substrate incrementally
// (core.RepairSubstrates): the safety relabeling is seeded from the
// failure neighborhood, BOUNDHOLE re-traces only the boundary walks
// through it, and the Gabriel graph recomputes only the incident rows.
// The repaired substrates are identical to rebuilding the Sim from
// scratch over the damaged topology, and the repairs happen in place,
// so the Sim's routers serve the new topology immediately. Nodes that
// are already dead are ignored; nothing happens when none remain.
//
// Fail mutates the shared network and substrates and therefore must not
// run concurrently with Route calls (see the Router contract); the
// Service layer does this serialization for servers.
func (s *Sim) Fail(nodes ...NodeID) {
	fresh := make([]NodeID, 0, len(nodes))
	for _, u := range nodes {
		if s.Dep.Net.Alive(u) {
			s.Dep.Net.SetAlive(u, false)
			fresh = append(fresh, u)
		}
	}
	if len(fresh) == 0 {
		return
	}
	core.RepairSubstrates(s.Safety, s.bounds, s.planarg, fresh)
}

// Move relocates nodes and repairs every substrate incrementally over
// the geometric dirty set the CSR rewrite reports
// (core.RepairSubstratesMoved): each substrate recomputes only the
// moved nodes' neighborhoods, and the result is identical to rebuilding
// the Sim from scratch at the new positions — the same differential
// contract as Fail. Dead nodes may move; liveness is orthogonal to
// position.
//
// Like Fail, Move mutates the shared network and substrates and must
// not run concurrently with Route calls; the Service layer serializes
// this for servers.
func (s *Sim) Move(moves ...Move) error {
	dirty, err := s.Dep.Net.SetPositions(moves)
	if err != nil {
		return err
	}
	if len(dirty) > 0 {
		core.RepairSubstratesMoved(s.Safety, s.bounds, s.planarg, dirty)
	}
	return nil
}

// Net returns the underlying network.
func (s *Sim) Net() *Network { return s.Dep.Net }

// Router returns the named router (nil for unknown names).
func (s *Sim) Router(alg Algorithm) core.Router { return s.routers[alg] }

// Route routes one packet with the named algorithm. Unknown algorithms
// return an undelivered result.
func (s *Sim) Route(alg Algorithm, src, dst NodeID) Result {
	r, ok := s.routers[alg]
	if !ok {
		return Result{Reason: core.DropNoCandidate}
	}
	return r.Route(src, dst)
}

// Algorithms lists the available algorithm names in the figure-legend
// order.
func (s *Sim) Algorithms() []Algorithm {
	return []Algorithm{GF, LGF, SLGF, SLGF2, GPSR, IdealHop, IdealLen}
}

// Service is the concurrent routing service: deployment registry,
// sharded LRU route cache, batch engine, and HTTP handlers. All methods
// are safe for concurrent use. See the "Serving routes" section above.
type Service = serve.Service

// ServiceConfig tunes a Service; the zero value is production-ready.
type ServiceConfig = serve.Config

// DeploymentSpec names a reproducible deployment for Service.Deploy.
type DeploymentSpec = serve.Spec

// RouteRequest is one query of a Service.Batch call.
type RouteRequest = serve.RouteRequest

// RouteResponse is the outcome of one batched query.
type RouteResponse = serve.RouteResponse

// ServiceStats is a snapshot of the service counters.
type ServiceStats = serve.Stats

// NewService builds a routing service. With no arguments the default
// configuration is used; pass one ServiceConfig to tune the cache and
// worker pool.
func NewService(cfg ...ServiceConfig) *Service {
	var c ServiceConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	return serve.New(c)
}

// ServiceAlgorithms lists the algorithm names a Service routes with.
func ServiceAlgorithms() []string { return serve.Algorithms() }

// Scenario is one complete workload description: a deployment, an
// arrival process, a traffic matrix, and an optional churn schedule.
// Build one as a literal, or parse a JSON file with
// workload.ParseFile via cmd/wasnd.
type Scenario = workload.Scenario

// LoadReport is the outcome of one scenario run: latency quantiles
// measured from intended arrivals, per-churn-phase delivery, a
// throughput timeline, and the server's own counters.
type LoadReport = workload.Report

// RunScenario executes one workload scenario against a private
// in-process routing service and returns its report. cmd/wasnd -load
// exposes the same engine with driver selection (in-process or HTTP)
// and trace recording.
func RunScenario(sc *Scenario) (*LoadReport, error) {
	drv := workload.NewInProcess(serve.New(serve.Config{}))
	defer drv.Close()
	return workload.Run(drv, sc)
}

// SweepConfig describes a capacity sweep: a base open-loop scenario
// run at a geometric (or knee-bisecting) ladder of offered rates.
type SweepConfig = sweep.Config

// CapacityCurve is a sweep's single JSON artifact: per-rung achieved
// throughput, latency quantiles, delivery rate, and cached share,
// plus the detected capacity knee and p99 cliff. Curves from two
// builds are comparable with sweep.Compare — the CI perf gate.
type CapacityCurve = sweep.CapacityCurve

// RunSweep runs a capacity sweep against a private in-process routing
// service and returns the curve. cmd/wasnd -sweep exposes the same
// engine with driver selection and baseline gating.
func RunSweep(cfg *SweepConfig) (*CapacityCurve, error) {
	drv := workload.NewInProcess(serve.New(serve.Config{}))
	defer drv.Close()
	return sweep.Run(drv, cfg, sweep.Options{})
}

// RunFigure regenerates one paper figure (5, 6, or 7) for the given
// model and returns the table as text. networks and pairs scale the
// sweep (the paper uses networks=100).
func RunFigure(figure int, model Model, networks, pairs int) (string, error) {
	var metric expt.Metric
	switch figure {
	case 5:
		metric = expt.MetricMaxHops
	case 6:
		metric = expt.MetricAvgHops
	case 7:
		metric = expt.MetricAvgLength
	default:
		return "", fmt.Errorf("wasn: unknown figure %d (want 5, 6, or 7)", figure)
	}
	sweep, err := expt.Run(expt.DefaultConfig(model, networks, pairs))
	if err != nil {
		return "", err
	}
	return sweep.Table(metric).Text(), nil
}
