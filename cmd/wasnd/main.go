// Command wasnd serves routes over deployed sensor networks: an
// HTTP/JSON frontend on the internal/serve routing service (deployment
// registry, sharded LRU route cache, batch engine).
//
// Server mode:
//
//	wasnd -addr :8080
//	curl -d '{"model":"fa","n":500,"seed":42,"build":true}' localhost:8080/deploy
//	curl -d '{"deployment":"FA-500-42","algorithm":"SLGF2","src":3,"dst":441}' localhost:8080/route
//	curl -d '{"deployment":"FA-500-42","nodes":[17,23]}' localhost:8080/fail
//	curl localhost:8080/stats
//
// Load-generator mode benchmarks the service in-process, reporting
// routes/sec and latency percentiles for the uncached and cached paths:
//
//	wasnd -load -model fa -n 500 -requests 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/straightpath/wasn/internal/metrics"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wasnd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wasnd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (server mode)")
		cacheSize = fs.Int("cache", 0, "route cache entries, 0 = default, negative disables")
		shards    = fs.Int("shards", 0, "route cache shards (0 = default)")
		workers   = fs.Int("workers", 0, "batch worker pool size (0 = NumCPU)")
		fullRb    = fs.Bool("full-rebuild", false, "rebuild substrates from scratch on /fail instead of repairing incrementally (differential oracle)")

		load     = fs.Bool("load", false, "run the load generator instead of serving")
		model    = fs.String("model", "fa", "load: deployment model (ia or fa)")
		n        = fs.Int("n", 500, "load: node count")
		seed     = fs.Uint64("seed", 42, "load: deployment seed")
		alg      = fs.String("alg", "SLGF2", "load: routing algorithm")
		pairs    = fs.Int("pairs", 200, "load: distinct source-destination pairs")
		requests = fs.Int("requests", 20000, "load: route requests per phase")
		conc     = fs.Int("concurrency", 0, "load: client goroutines (0 = NumCPU)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{CacheSize: *cacheSize, CacheShards: *shards, Workers: *workers, FullRebuildOnFail: *fullRb}
	if *load {
		return runLoad(out, cfg, *model, *n, *seed, *alg, *pairs, *requests, *conc)
	}

	s := serve.New(cfg)
	log.Printf("wasnd listening on %s", *addr)
	return http.ListenAndServe(*addr, s.Handler())
}

// runLoad benchmarks the uncached and cached route paths over one
// deployment and reports throughput, latency percentiles, and speedup.
func runLoad(out *os.File, cfg serve.Config, model string, n int, seed uint64, alg string, pairCount, requests, conc int) error {
	m, err := topo.ParseDeployModel(model)
	if err != nil {
		return err
	}
	if conc <= 0 {
		conc = runtime.NumCPU()
	}
	spec := serve.Spec{Model: m, N: n, Seed: seed}

	// Two services over the same deployment: one with the cache disabled
	// (every request routes from scratch) and one with it enabled.
	uncachedCfg := cfg
	uncachedCfg.CacheSize = -1
	uncached := serve.New(uncachedCfg)
	cached := serve.New(cfg)

	name := spec.DefaultName()
	for _, s := range []*serve.Service{uncached, cached} {
		if _, err := s.Deploy(name, spec); err != nil {
			return err
		}
		if err := s.Build(name); err != nil {
			return err
		}
	}

	reqPairs, err := loadPairs(spec, pairCount)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wasnd load: %s, algorithm %s, %d pairs, %d requests/phase, %d clients\n",
		name, alg, len(reqPairs), requests, conc)

	uStat, err := drive(uncached, name, alg, reqPairs, requests, conc)
	if err != nil {
		return err
	}
	// Warm the cache with one pass over every pair, then measure hits.
	if _, err := drive(cached, name, alg, reqPairs, len(reqPairs), conc); err != nil {
		return err
	}
	cStat, err := drive(cached, name, alg, reqPairs, requests, conc)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "uncached: %s\n", uStat)
	fmt.Fprintf(out, "cached:   %s\n", cStat)
	fmt.Fprintf(out, "speedup:  %.1fx\n", cStat.rate/uStat.rate)
	st := cached.Stats()
	fmt.Fprintf(out, "cache:    %d hits / %d misses / %d entries\n",
		st.CacheHits, st.CacheMisses, st.CacheEntries)
	return nil
}

// loadPairs picks routable (same-component, well-separated) pairs from
// an offline copy of the deployment.
func loadPairs(spec serve.Spec, want int) ([][2]topo.NodeID, error) {
	dep, err := topo.Deploy(topo.DefaultDeployConfig(spec.Model, spec.N, spec.Seed))
	if err != nil {
		return nil, err
	}
	pairs := topo.RoutablePairs(dep.Net, want, 60)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("no routable pairs in %s", spec.DefaultName())
	}
	return pairs, nil
}

// phaseStat aggregates one measured phase.
type phaseStat struct {
	routes  int
	elapsed time.Duration
	rate    float64
	p50     time.Duration
	p90     time.Duration
	p99     time.Duration
}

func (p phaseStat) String() string {
	return fmt.Sprintf("%d routes in %v = %.0f routes/s  p50=%v p90=%v p99=%v",
		p.routes, p.elapsed.Round(time.Millisecond), p.rate, p.p50, p.p90, p.p99)
}

// drive issues `requests` route calls cycling over the pairs from conc
// goroutines, recording per-request latency.
func drive(s *serve.Service, dep, alg string, pairs [][2]topo.NodeID, requests, conc int) (phaseStat, error) {
	lat := make([][]float64, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]float64, 0, requests/conc+1)
			for i := w; i < requests; i += conc {
				p := pairs[i%len(pairs)]
				t0 := time.Now()
				if _, _, err := s.Route(dep, alg, p[0], p[1]); err != nil {
					errs[w] = err
					return
				}
				mine = append(mine, float64(time.Since(t0)))
			}
			lat[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return phaseStat{}, err
		}
	}
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	return phaseStat{
		routes:  len(all),
		elapsed: elapsed,
		rate:    float64(len(all)) / elapsed.Seconds(),
		p50:     time.Duration(metrics.Percentile(all, 50)),
		p90:     time.Duration(metrics.Percentile(all, 90)),
		p99:     time.Duration(metrics.Percentile(all, 99)),
	}, nil
}
