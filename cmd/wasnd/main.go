// Command wasnd serves routes over deployed sensor networks: an
// HTTP/JSON frontend on the internal/serve routing service (deployment
// registry, sharded LRU route cache, batch engine, incremental
// substrate repair).
//
// Server mode (SIGINT/SIGTERM drain in-flight requests and exit):
//
//	wasnd -addr :8080
//	curl -d '{"model":"fa","n":500,"seed":42,"build":true}' localhost:8080/deploy
//	curl -d '{"deployment":"FA-500-42","algorithm":"SLGF2","src":3,"dst":441}' localhost:8080/route
//	curl -d '{"deployment":"FA-500-42","nodes":[17,23]}' localhost:8080/fail
//	curl localhost:8080/stats
//
// Load mode is a thin shim over the internal/workload scenario engine:
// canned presets or scenario JSON files compose an arrival process
// (closed-loop, open-loop Poisson, bursty), a traffic matrix (uniform,
// zipf, convergecast), and a churn schedule, driven either in-process
// or over HTTP against a running wasnd:
//
//	wasnd -load -preset convergecast
//	wasnd -load -scenario examples/scenarios/churn-storm.json -out report.json
//	wasnd -load -preset steady -driver http -target http://localhost:8080
//
// Sweep mode runs a scenario at a ladder of offered rates
// (internal/sweep) and emits a CapacityCurve JSON locating the
// capacity knee and p99 cliff, optionally gating against a baseline
// curve; record/replay capture a run's exact (src, dst, intended-at)
// request stream plus churn firings to a JSONL trace and re-issue it
// bit-for-bit:
//
//	wasnd -sweep examples/scenarios/sweep-capacity.json -out curve.json
//	wasnd -sweep .github/perf/sweep-ci.json -baseline .github/perf/baseline-curve.json -normalize
//	wasnd -load -preset steady -record steady.trace.jsonl
//	wasnd -replay steady.trace.jsonl -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wasnd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wasnd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (server mode)")
		cacheSize = fs.Int("cache", 0, "route cache entries, 0 = default, negative disables")
		shards    = fs.Int("shards", 0, "route cache shards (0 = default)")
		workers   = fs.Int("workers", 0, "batch worker pool size (0 = NumCPU)")
		fullRb    = fs.Bool("full-rebuild", false, "rebuild substrates from scratch on /fail and /revive instead of repairing incrementally (differential oracle)")

		load     = fs.Bool("load", false, "run the workload engine instead of serving")
		preset   = fs.String("preset", "steady", "load: canned scenario (steady, hotspot, convergecast, churn-storm)")
		scenario = fs.String("scenario", "", "load: scenario JSON file (overrides -preset)")
		driver   = fs.String("driver", "inprocess", "load/sweep/replay: inprocess or http")
		target   = fs.String("target", "", "load/sweep/replay: wasnd base URL for -driver http")
		outFile  = fs.String("out", "", "load/sweep/replay: write the JSON report (or capacity curve) here too")

		sweepCfg = fs.String("sweep", "", "run a capacity sweep from this config JSON file instead of serving")
		baseline = fs.String("baseline", "", "sweep: compare the curve against this baseline curve JSON; regressions exit nonzero")
		p99Tol   = fs.Float64("p99-tol", 0, "sweep: allowed fractional p99 regression at the baseline knee rung (0 = 0.25)")
		delTol   = fs.Float64("delivery-tol", 0, "sweep: allowed fractional delivery regression (0 = 0.25)")
		kneeTol  = fs.Float64("knee-tol", 0, "sweep: allowed fractional capacity-knee shrink (0 = 0.25)")
		normal   = fs.Bool("normalize", false, "sweep: compare p99 normalized to each curve's lightest rung (machine-speed independent)")

		record  = fs.String("record", "", "load/replay: write the run's (src,dst,at) request + churn trace to this JSONL file")
		replayF = fs.String("replay", "", "replay this recorded trace instead of serving")
		verify  = fs.Bool("verify", false, "replay: exit nonzero unless outcome counts match the trace's recorded summary")
		paced   = fs.Bool("paced", false, "replay: re-issue requests at their recorded arrival times instead of as fast as possible")

		model = fs.String("model", "", "load: override the scenario's deployment model")
		n     = fs.Int("n", 0, "load: override the scenario's node count")
		seed  = fs.Uint64("seed", 0, "load: override the scenario's deployment seed")
		alg   = fs.String("alg", "", "load: override the scenario's algorithm")
		rate  = fs.Float64("rate", 0, "load: override the open-loop arrival rate (req/s)")
		durMS = fs.Int("duration", 0, "load: override the open-loop duration (ms)")
		reqs  = fs.Int("requests", 0, "load: override the closed-loop request count")
		conc  = fs.Int("concurrency", 0, "load: override the client/worker count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{CacheSize: *cacheSize, CacheShards: *shards, Workers: *workers, FullRebuildOnFail: *fullRb}
	// The three run modes are mutually exclusive, and flags a mode
	// cannot honor are an error, not a silent no-op — a script asking
	// for a trace must not get a green exit and a missing file.
	if *sweepCfg != "" && (*load || *replayF != "") {
		return fmt.Errorf("-sweep is exclusive with -load and -replay")
	}
	if *load && *replayF != "" {
		return fmt.Errorf("-load is exclusive with -replay")
	}
	if *sweepCfg != "" && *record != "" {
		return fmt.Errorf("-record applies to -load and -replay runs, not -sweep")
	}
	if (*verify || *paced) && *replayF == "" {
		return fmt.Errorf("-verify and -paced apply only to -replay")
	}
	switch {
	case *sweepCfg != "":
		tol := sweep.Tolerance{P99Frac: *p99Tol, DeliveryFrac: *delTol, KneeFrac: *kneeTol, Normalize: *normal}
		return runSweep(out, *sweepCfg, *driver, *target, *outFile, *baseline, tol, cfg)
	case *replayF != "":
		return runReplay(out, *replayF, *driver, *target, *outFile, *record, *verify, *paced, cfg)
	case *load:
		sc, err := loadScenario(*scenario, *preset)
		if err != nil {
			return err
		}
		applyOverrides(sc, *model, *n, *seed, *alg, *rate, *durMS, *reqs, *conc)
		return runLoad(out, sc, *driver, *target, *outFile, *record, cfg)
	}
	return serveHTTP(cfg, *addr)
}

// serveHTTP runs the server until SIGINT/SIGTERM, then drains in-flight
// requests via http.Server.Shutdown so HTTP-mode load runs end cleanly.
func serveHTTP(cfg serve.Config, addr string) error {
	srv := &http.Server{Addr: addr, Handler: serve.New(cfg).Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("wasnd listening on %s", addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C kills hard
		log.Printf("wasnd: draining (up to 10s)")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("wasnd: drained cleanly")
		return nil
	}
}

// loadScenario resolves -scenario (a JSON file) or -preset.
func loadScenario(file, preset string) (*workload.Scenario, error) {
	if file != "" {
		return workload.ParseFile(file)
	}
	return workload.Preset(preset)
}

// applyOverrides lets the quick-tour flags tweak a canned scenario
// without writing a JSON file. Zero values leave the scenario as is.
func applyOverrides(sc *workload.Scenario, model string, n int, seed uint64, alg string, rate float64, durMS, reqs, conc int) {
	if model != "" {
		sc.Deployment.Model = model
	}
	if n > 0 {
		sc.Deployment.N = n
	}
	if seed != 0 {
		sc.Deployment.Seed = seed
	}
	if alg != "" {
		sc.Algorithm = alg
	}
	if rate > 0 {
		sc.Arrival.RateHz = rate
	}
	if durMS > 0 {
		sc.Arrival.DurationMS = durMS
	}
	if reqs > 0 {
		sc.Arrival.Requests = reqs
	}
	if conc > 0 {
		sc.Arrival.Concurrency = conc
	}
}

// runLoad executes the scenario, prints the human summary, writes the
// full JSON report to -out and the trace to -record when given, and
// exits nonzero when the engine reported request errors or shed load —
// a smoke job must not pass on a failing run.
func runLoad(out io.Writer, sc *workload.Scenario, driver, target, outFile, recordFile string, cfg serve.Config) error {
	drv, err := workload.NewDriver(driver, target, cfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	var rec *workload.Recorder
	if recordFile != "" {
		rec = workload.NewRecorder(drv)
		drv = rec
	}
	fmt.Fprintf(out, "wasnd load: scenario %s, driver %s\n", sc.Name, drv.Name())
	rep, err := workload.Run(drv, sc)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if err := writeArtifacts(out, rep, rec, outFile, recordFile); err != nil {
		return err
	}
	return reportExitErr(rep)
}

// runReplay re-issues a recorded trace, optionally verifying the
// outcome against the trace's summary and re-recording it.
func runReplay(out io.Writer, traceFile, driver, target, outFile, recordFile string, verify, paced bool, cfg serve.Config) error {
	tr, err := workload.ReadTraceFile(traceFile)
	if err != nil {
		return err
	}
	drv, err := workload.NewDriver(driver, target, cfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	var rec *workload.Recorder
	if recordFile != "" {
		rec = workload.NewRecorder(drv)
		drv = rec
	}
	fmt.Fprintf(out, "wasnd replay: %s (%d events), driver %s\n", traceFile, len(tr.Events), drv.Name())
	rep, err := workload.Replay(drv, tr, workload.ReplayOptions{Paced: paced})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if err := writeArtifacts(out, rep, rec, outFile, recordFile); err != nil {
		return err
	}
	if verify {
		// -verify makes summary agreement the exit criterion: a trace
		// recorded from a run that itself had request errors must exit
		// zero when the replay reproduces those errors exactly —
		// that's a faithful reproduction, not a failure.
		if err := tr.VerifySummary(rep); err != nil {
			return err
		}
		fmt.Fprintln(out, "replay verified: outcome counts match the recorded run")
		return nil
	}
	return reportExitErr(rep)
}

// runSweep runs the capacity ladder, writes the curve artifact, and
// gates against a baseline curve when one is given.
func runSweep(out io.Writer, cfgFile, driver, target, outFile, baselineFile string, tol sweep.Tolerance, svcCfg serve.Config) error {
	cfg, err := sweep.ParseConfigFile(cfgFile)
	if err != nil {
		return err
	}
	drv, err := workload.NewDriver(driver, target, svcCfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	fmt.Fprintf(out, "wasnd sweep: %s, %d rungs %.0f..%.0f req/s (%s), driver %s\n",
		cfg.Name, cfg.Steps, cfg.MinRateHz, cfg.MaxRateHz, cfg.Mode, drv.Name())
	curve, err := sweep.Run(drv, cfg, sweep.Options{Progress: func(r sweep.Rung) {
		fmt.Fprintf(out, "  rung %7.0f req/s: achieved %7.0f, delivered %.2f%%, p99 %.1fus\n",
			r.OfferedRPS, r.AchievedRPS, 100*r.DeliveryRate, r.Latency.P99us)
	}})
	if err != nil {
		return err
	}
	fmt.Fprint(out, curve.Summary())
	if outFile != "" {
		if err := curve.WriteFile(outFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "curve written to %s\n", outFile)
	}
	if baselineFile != "" {
		base, err := sweep.ParseCurveFile(baselineFile)
		if err != nil {
			return err
		}
		if regs := sweep.Compare(curve, base, tol); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(out, "REGRESSION: %s\n", r)
			}
			return fmt.Errorf("%d perf regression(s) against %s", len(regs), baselineFile)
		}
		fmt.Fprintf(out, "no regressions against %s\n", baselineFile)
	}
	return nil
}

// writeArtifacts persists the report (-out) and trace (-record) files.
func writeArtifacts(out io.Writer, rep *workload.Report, rec *workload.Recorder, outFile, recordFile string) error {
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", outFile)
	}
	if rec != nil {
		if err := rec.WriteFile(recordFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", recordFile)
	}
	return nil
}

// reportExitErr maps a completed run's failure counters to a nonzero
// exit: request errors always, shed arrivals because an overloaded
// open loop is a failed run for CI purposes (the report itself still
// prints and persists first).
func reportExitErr(rep *workload.Report) error {
	if rep.Errors > 0 {
		return fmt.Errorf("run completed with %d request errors (first: %s)", rep.Errors, rep.ErrorSample)
	}
	if rep.Dropped > 0 {
		return fmt.Errorf("run shed %d arrivals: offered load exceeded what the driver could absorb", rep.Dropped)
	}
	return nil
}
