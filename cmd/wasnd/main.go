// Command wasnd serves routes over deployed sensor networks: an
// HTTP/JSON frontend on the internal/serve routing service (deployment
// registry, sharded LRU route cache, batch engine, incremental
// substrate repair).
//
// Server mode (SIGINT/SIGTERM drain in-flight requests and exit):
//
//	wasnd -addr :8080
//	curl -d '{"model":"fa","n":500,"seed":42,"build":true}' localhost:8080/deploy
//	curl -d '{"deployment":"FA-500-42","algorithm":"SLGF2","src":3,"dst":441}' localhost:8080/route
//	curl -d '{"deployment":"FA-500-42","nodes":[17,23]}' localhost:8080/fail
//	curl localhost:8080/stats
//
// Load mode is a thin shim over the internal/workload scenario engine:
// canned presets or scenario JSON files compose an arrival process
// (closed-loop, open-loop Poisson, bursty), a traffic matrix (uniform,
// zipf, convergecast), and a churn schedule, driven either in-process
// or over HTTP against a running wasnd:
//
//	wasnd -load -preset convergecast
//	wasnd -load -scenario examples/scenarios/churn-storm.json -out report.json
//	wasnd -load -preset steady -driver http -target http://localhost:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wasnd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wasnd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (server mode)")
		cacheSize = fs.Int("cache", 0, "route cache entries, 0 = default, negative disables")
		shards    = fs.Int("shards", 0, "route cache shards (0 = default)")
		workers   = fs.Int("workers", 0, "batch worker pool size (0 = NumCPU)")
		fullRb    = fs.Bool("full-rebuild", false, "rebuild substrates from scratch on /fail and /revive instead of repairing incrementally (differential oracle)")

		load     = fs.Bool("load", false, "run the workload engine instead of serving")
		preset   = fs.String("preset", "steady", "load: canned scenario (steady, hotspot, convergecast, churn-storm)")
		scenario = fs.String("scenario", "", "load: scenario JSON file (overrides -preset)")
		driver   = fs.String("driver", "inprocess", "load: inprocess or http")
		target   = fs.String("target", "", "load: wasnd base URL for -driver http")
		outFile  = fs.String("out", "", "load: write the JSON report here too")

		model = fs.String("model", "", "load: override the scenario's deployment model")
		n     = fs.Int("n", 0, "load: override the scenario's node count")
		seed  = fs.Uint64("seed", 0, "load: override the scenario's deployment seed")
		alg   = fs.String("alg", "", "load: override the scenario's algorithm")
		rate  = fs.Float64("rate", 0, "load: override the open-loop arrival rate (req/s)")
		durMS = fs.Int("duration", 0, "load: override the open-loop duration (ms)")
		reqs  = fs.Int("requests", 0, "load: override the closed-loop request count")
		conc  = fs.Int("concurrency", 0, "load: override the client/worker count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{CacheSize: *cacheSize, CacheShards: *shards, Workers: *workers, FullRebuildOnFail: *fullRb}
	if *load {
		sc, err := loadScenario(*scenario, *preset)
		if err != nil {
			return err
		}
		applyOverrides(sc, *model, *n, *seed, *alg, *rate, *durMS, *reqs, *conc)
		return runLoad(out, sc, *driver, *target, *outFile, cfg)
	}
	return serveHTTP(cfg, *addr)
}

// serveHTTP runs the server until SIGINT/SIGTERM, then drains in-flight
// requests via http.Server.Shutdown so HTTP-mode load runs end cleanly.
func serveHTTP(cfg serve.Config, addr string) error {
	srv := &http.Server{Addr: addr, Handler: serve.New(cfg).Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("wasnd listening on %s", addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C kills hard
		log.Printf("wasnd: draining (up to 10s)")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("wasnd: drained cleanly")
		return nil
	}
}

// loadScenario resolves -scenario (a JSON file) or -preset.
func loadScenario(file, preset string) (*workload.Scenario, error) {
	if file != "" {
		return workload.ParseFile(file)
	}
	return workload.Preset(preset)
}

// applyOverrides lets the quick-tour flags tweak a canned scenario
// without writing a JSON file. Zero values leave the scenario as is.
func applyOverrides(sc *workload.Scenario, model string, n int, seed uint64, alg string, rate float64, durMS, reqs, conc int) {
	if model != "" {
		sc.Deployment.Model = model
	}
	if n > 0 {
		sc.Deployment.N = n
	}
	if seed != 0 {
		sc.Deployment.Seed = seed
	}
	if alg != "" {
		sc.Algorithm = alg
	}
	if rate > 0 {
		sc.Arrival.RateHz = rate
	}
	if durMS > 0 {
		sc.Arrival.DurationMS = durMS
	}
	if reqs > 0 {
		sc.Arrival.Requests = reqs
	}
	if conc > 0 {
		sc.Arrival.Concurrency = conc
	}
}

// runLoad executes the scenario, prints the human summary, and writes
// the full JSON report to -out when given.
func runLoad(out io.Writer, sc *workload.Scenario, driver, target, outFile string, cfg serve.Config) error {
	drv, err := workload.NewDriver(driver, target, cfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	fmt.Fprintf(out, "wasnd load: scenario %s, driver %s\n", sc.Name, drv.Name())
	rep, err := workload.Run(drv, sc)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", outFile)
	}
	return nil
}
