// Command wasnd serves routes over deployed sensor networks: an
// HTTP/JSON frontend on the internal/serve routing service (deployment
// registry, sharded LRU route cache, batch engine, incremental
// substrate repair).
//
// Server mode (SIGINT/SIGTERM drain in-flight requests and exit):
//
//	wasnd -addr :8080
//	curl -d '{"model":"fa","n":500,"seed":42,"build":true}' localhost:8080/deploy
//	curl -d '{"deployment":"FA-500-42","algorithm":"SLGF2","src":3,"dst":441}' localhost:8080/route
//	curl -d '{"deployment":"FA-500-42","nodes":[17,23]}' localhost:8080/fail
//	curl localhost:8080/stats
//
// The server is observable first-class: /metrics serves a
// Prometheus-style text exposition, /traces the sampled route decision
// traces (-trace-sample, plus per-request traces via "trace": true on
// /route), -pprof mounts net/http/pprof, and -log-level/-log-format
// select structured slog output with per-request IDs:
//
//	wasnd -addr :8080 -pprof -trace-sample 64 -stretch-sample 16 -log-format json -log-level debug
//	curl localhost:8080/metrics
//	wasnd -check-metrics http://localhost:8080/metrics   # CI gate: required series present?
//
// The flight recorder adds the time dimension: -sample-every (default
// 1s) samples the registry into a fixed-memory timeline served at
// /timeline, every build/fail/revive/move lands in the /events journal
// with request IDs and per-substrate repair spans, /debug/dash charts
// both live, and -render turns report/curve/BENCH JSON artifacts into
// SVG trajectory figures:
//
//	wasnd -addr :8080 -sample-every 250
//	curl 'localhost:8080/events?kind=fail'
//	open http://localhost:8080/debug/dash
//	wasnd -render report.json -out report.svg
//
// Load mode is a thin shim over the internal/workload scenario engine:
// canned presets or scenario JSON files compose an arrival process
// (closed-loop, open-loop Poisson, bursty), a traffic matrix (uniform,
// zipf, convergecast), and a churn schedule, driven either in-process
// or over HTTP against a running wasnd:
//
//	wasnd -load -preset convergecast
//	wasnd -load -scenario examples/scenarios/churn-storm.json -out report.json
//	wasnd -load -preset steady -driver http -target http://localhost:8080
//
// Sweep mode runs a scenario at a ladder of offered rates
// (internal/sweep) and emits a CapacityCurve JSON locating the
// capacity knee and p99 cliff, optionally gating against a baseline
// curve; record/replay capture a run's exact (src, dst, intended-at)
// request stream plus churn firings to a JSONL trace and re-issue it
// bit-for-bit:
//
//	wasnd -sweep examples/scenarios/sweep-capacity.json -out curve.json
//	wasnd -sweep .github/perf/sweep-ci.json -baseline .github/perf/baseline-curve.json -normalize
//	wasnd -load -preset steady -record steady.trace.jsonl
//	wasnd -replay steady.trace.jsonl -verify
//
// Fleet mode shards deployments across replicas (internal/fleet):
// -router runs the consistent-hash proxy tier, replicas join it with
// -join and serve the length-prefixed binary batch transport on
// -binary-port; -snapshot-dir persists a versioned binary snapshot of
// the registry on every state change and restores it on boot, so a
// restarted replica answers route-identically. -addr :0 picks a free
// port and prints it on stdout (and in /readyz) so scripts never race
// on fixed ports:
//
//	wasnd -router -addr :9090
//	wasnd -addr :0 -join http://localhost:9090 -replica-id r1 -snapshot-dir /var/lib/wasnd/r1 -binary-port 0
//	wasnd -load -preset churn-storm -driver fleet -target http://localhost:9090
//	wasnd -check-metrics http://localhost:9090/metrics -fleet
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	rpprof "runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/straightpath/wasn/internal/fleet"
	"github.com/straightpath/wasn/internal/obs"
	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wasnd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wasnd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (server mode)")
		cacheSize = fs.Int("cache", 0, "route cache entries, 0 = default, negative disables")
		shards    = fs.Int("shards", 0, "route cache shards (0 = default)")
		workers   = fs.Int("workers", 0, "batch worker pool size (0 = NumCPU)")
		fullRb    = fs.Bool("full-rebuild", false, "rebuild substrates from scratch on /fail and /revive instead of repairing incrementally (differential oracle)")
		sampleEv  = fs.Int("sample-every", 1000, "flight-recorder timeline sampling period in ms (0 disables the sampler; /timeline and /debug/dash then stay empty)")

		logLevel  = fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat = fs.String("log-format", "text", "log output: text or json")
		pprofOn   = fs.Bool("pprof", false, "server mode: also serve net/http/pprof under /debug/pprof/")
		traceN    = fs.Int("trace-sample", 0, "sample every Nth computed route into the /traces ring (0 disables)")
		stretchN  = fs.Int("stretch-sample", 0, "sample every Nth delivered route for hop stretch vs the ideal min-hop path (0 disables)")
		cpuProf   = fs.String("cpuprofile", "", "load/sweep/replay: write a CPU profile of the run here")
		progressF = fs.Bool("progress", false, "load/sweep: stream live progress lines to stderr")
		checkURL  = fs.String("check-metrics", "", "scrape this /metrics URL, verify the required series exist, and exit (CI gate)")
		checkFlt  = fs.Bool("fleet", false, "check-metrics: gate the router's wasn_fleet_* series instead of the replica contract")
		renderIn  = fs.String("render", "", "render this report/curve/BENCH JSON file to an SVG trajectory figure and exit (-out names the SVG; default input with .svg)")

		routerOn  = fs.Bool("router", false, "run the fleet router (consistent-hash proxy tier) instead of a replica")
		joinURL   = fs.String("join", "", "replica: register with the fleet router at this base URL on startup")
		replicaID = fs.String("replica-id", "", "replica: fleet identity (default derived from the listen address)")
		snapDir   = fs.String("snapshot-dir", "", "replica: persist a registry snapshot here on every state change and restore it on boot")
		binPort   = fs.Int("binary-port", -1, "replica: serve the binary batch transport on this TCP port (0 = OS-chosen; negative disables)")

		load     = fs.Bool("load", false, "run the workload engine instead of serving")
		preset   = fs.String("preset", "steady", "load: canned scenario (steady, hotspot, convergecast, churn-storm)")
		scenario = fs.String("scenario", "", "load: scenario JSON file (overrides -preset)")
		driver   = fs.String("driver", "inprocess", "load/sweep/replay: inprocess or http")
		target   = fs.String("target", "", "load/sweep/replay: wasnd base URL for -driver http")
		outFile  = fs.String("out", "", "load/sweep/replay: write the JSON report (or capacity curve) here too")

		sweepCfg = fs.String("sweep", "", "run a capacity sweep from this config JSON file instead of serving")
		baseline = fs.String("baseline", "", "sweep: compare the curve against this baseline curve JSON; regressions exit nonzero")
		p99Tol   = fs.Float64("p99-tol", 0, "sweep: allowed fractional p99 regression at the baseline knee rung (0 = 0.25)")
		delTol   = fs.Float64("delivery-tol", 0, "sweep: allowed fractional delivery regression (0 = 0.25)")
		kneeTol  = fs.Float64("knee-tol", 0, "sweep: allowed fractional capacity-knee shrink (0 = 0.25)")
		normal   = fs.Bool("normalize", false, "sweep: compare p99 normalized to each curve's lightest rung (machine-speed independent)")

		record  = fs.String("record", "", "load/replay: write the run's (src,dst,at) request + churn trace to this JSONL file")
		replayF = fs.String("replay", "", "replay this recorded trace instead of serving")
		verify  = fs.Bool("verify", false, "replay: exit nonzero unless outcome counts match the trace's recorded summary")
		paced   = fs.Bool("paced", false, "replay: re-issue requests at their recorded arrival times instead of as fast as possible")

		model = fs.String("model", "", "load: override the scenario's deployment model")
		n     = fs.Int("n", 0, "load: override the scenario's node count")
		seed  = fs.Uint64("seed", 0, "load: override the scenario's deployment seed")
		alg   = fs.String("alg", "", "load: override the scenario's algorithm")
		rate  = fs.Float64("rate", 0, "load: override the open-loop arrival rate (req/s)")
		durMS = fs.Int("duration", 0, "load: override the open-loop duration (ms)")
		reqs  = fs.Int("requests", 0, "load: override the closed-loop request count")
		conc  = fs.Int("concurrency", 0, "load: override the client/worker count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		CacheSize: *cacheSize, CacheShards: *shards, Workers: *workers, FullRebuildOnFail: *fullRb,
		TraceSampleEvery: *traceN, StretchSampleEvery: *stretchN,
		SampleEveryMS: *sampleEv,
	}
	logger, err := newLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	// The run modes are mutually exclusive, and flags a mode cannot
	// honor are an error, not a silent no-op — a script asking for a
	// trace must not get a green exit and a missing file.
	if *checkURL != "" && (*load || *replayF != "" || *sweepCfg != "") {
		return fmt.Errorf("-check-metrics is exclusive with -load, -sweep and -replay")
	}
	if *renderIn != "" && (*load || *replayF != "" || *sweepCfg != "" || *checkURL != "") {
		return fmt.Errorf("-render is exclusive with -load, -sweep, -replay and -check-metrics")
	}
	if *sweepCfg != "" && (*load || *replayF != "") {
		return fmt.Errorf("-sweep is exclusive with -load and -replay")
	}
	if *load && *replayF != "" {
		return fmt.Errorf("-load is exclusive with -replay")
	}
	if *sweepCfg != "" && *record != "" {
		return fmt.Errorf("-record applies to -load and -replay runs, not -sweep")
	}
	if (*verify || *paced) && *replayF == "" {
		return fmt.Errorf("-verify and -paced apply only to -replay")
	}
	if *checkFlt && *checkURL == "" {
		return fmt.Errorf("-fleet applies only to -check-metrics")
	}
	fleetFlags := *routerOn || *joinURL != "" || *replicaID != "" || *snapDir != "" || *binPort >= 0
	if fleetFlags && (*load || *replayF != "" || *sweepCfg != "" || *checkURL != "" || *renderIn != "") {
		return fmt.Errorf("-router, -join, -replica-id, -snapshot-dir and -binary-port apply only to server mode")
	}
	if *routerOn && (*joinURL != "" || *replicaID != "" || *snapDir != "" || *binPort >= 0) {
		return fmt.Errorf("-join, -replica-id, -snapshot-dir and -binary-port are replica flags; a -router holds no registry")
	}
	var prog io.Writer
	if *progressF {
		prog = os.Stderr
	}
	switch {
	case *checkURL != "":
		return runCheckMetrics(out, *checkURL, *checkFlt)
	case *renderIn != "":
		return runRender(out, *renderIn, *outFile)
	case *sweepCfg != "":
		tol := sweep.Tolerance{P99Frac: *p99Tol, DeliveryFrac: *delTol, KneeFrac: *kneeTol, Normalize: *normal}
		return withCPUProfile(*cpuProf, func() error {
			return runSweep(out, prog, *sweepCfg, *driver, *target, *outFile, *baseline, tol, cfg)
		})
	case *replayF != "":
		return withCPUProfile(*cpuProf, func() error {
			return runReplay(out, *replayF, *driver, *target, *outFile, *record, *verify, *paced, cfg)
		})
	case *load:
		sc, err := loadScenario(*scenario, *preset)
		if err != nil {
			return err
		}
		applyOverrides(sc, *model, *n, *seed, *alg, *rate, *durMS, *reqs, *conc)
		return withCPUProfile(*cpuProf, func() error {
			return runLoad(out, prog, sc, *driver, *target, *outFile, *record, cfg)
		})
	}
	return serveHTTP(out, logger, cfg, serverOpts{
		addr: *addr, pprof: *pprofOn,
		router: *routerOn, joinURL: *joinURL, replicaID: *replicaID,
		snapshotDir: *snapDir, binaryPort: *binPort,
	})
}

// newLogger builds the process logger from the -log-level and
// -log-format flags.
func newLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// withCPUProfile brackets f with a runtime/pprof CPU profile when a
// path was given (the artifact the CI sweep job uploads).
func withCPUProfile(path string, f func() error) error {
	if path == "" {
		return f()
	}
	fp, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := rpprof.StartCPUProfile(fp); err != nil {
		fp.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	runErr := f()
	rpprof.StopCPUProfile()
	if err := fp.Close(); err != nil && runErr == nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	return runErr
}

// requiredMetricFamilies is the exposition contract a healthy wasnd
// must satisfy once it has built a deployment and served routes —
// the -check-metrics CI gate. Cache and churn families are excluded:
// they legitimately stay absent when the cache is disabled or no node
// has failed.
var requiredMetricFamilies = []string{
	"wasn_http_requests_total",
	"wasn_http_request_duration_us",
	"wasn_deployments",
	"wasn_substrate_builds_total",
	"wasn_build_duration_us",
	"wasn_routes_total",
	"wasn_routes_computed_total",
	"wasn_route_hops",
	"wasn_route_phase_hops_total",
	"wasn_repair_substrate_duration_us",
	"wasn_traces_recorded_total",
}

// requiredFleetMetricFamilies is the same contract for the router's
// exposition (-check-metrics -fleet): the fleet-chaos CI job gates on
// these after the kill/re-shard, so a rotted control-plane surface
// fails the build just like a rotted replica one.
var requiredFleetMetricFamilies = []string{
	"wasn_fleet_replicas",
	"wasn_fleet_replicas_alive",
	"wasn_fleet_replica_up",
	"wasn_fleet_reshards_total",
	"wasn_fleet_restores_total",
	"wasn_fleet_proxied_requests_total",
}

// runCheckMetrics scrapes one exposition and gates on the required
// series being present — the mid-run CI probe that fails the build
// when the observability surface rots. fleetGate switches to the
// router's wasn_fleet_* contract.
func runCheckMetrics(out io.Writer, url string, fleetGate bool) error {
	families := requiredMetricFamilies
	if fleetGate {
		families = requiredFleetMetricFamilies
	}
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("check-metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("check-metrics: %s: HTTP %d", url, resp.StatusCode)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("check-metrics: %s: %w", url, err)
	}
	if missing := obs.MissingSeries(samples, families); len(missing) > 0 {
		return fmt.Errorf("check-metrics: %s: missing required series: %v", url, missing)
	}
	fmt.Fprintf(out, "metrics ok: %d series scraped, all %d required families present\n",
		len(samples), len(families))
	return nil
}

// serverOpts gathers the server-mode flags: which tier to run (router
// or replica) and the replica's fleet wiring.
type serverOpts struct {
	addr        string
	pprof       bool
	router      bool
	joinURL     string
	replicaID   string
	snapshotDir string
	binaryPort  int
}

// serveHTTP binds the listener first — -addr :0 is legal, and the
// resolved address is printed on stdout and served in /readyz so
// scripts stop racing on fixed ports — then runs the requested tier
// until SIGINT/SIGTERM drains it.
func serveHTTP(out io.Writer, logger *slog.Logger, cfg serve.Config, o serverOpts) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hostPort := advertiseAddr(ln.Addr())
	if o.router {
		return serveRouter(out, logger, ln, hostPort)
	}
	return serveReplica(out, logger, cfg, ln, hostPort, o)
}

// serveRouter runs the fleet control plane: shard map, health loop,
// state-transfer pushes and the proxy endpoints (internal/fleet.Router).
func serveRouter(out io.Writer, logger *slog.Logger, ln net.Listener, hostPort string) error {
	rt := fleet.NewRouter(fleet.RouterConfig{})
	defer rt.Close()
	fmt.Fprintf(out, "wasnd router listening on %s\n", hostPort)
	logger.Info("wasnd router listening", "addr", hostPort)
	srv := &http.Server{Handler: requestLog(logger, rt.Handler())}
	return serveAndDrain(logger, srv, ln, nil)
}

// serveReplica runs the routing service, optionally with snapshot
// persistence (-snapshot-dir), the binary batch transport
// (-binary-port) and fleet membership (-join). The snapshot is
// restored before the listener serves, so the first request already
// sees the pre-crash registry.
func serveReplica(out io.Writer, logger *slog.Logger, cfg serve.Config, ln net.Listener, hostPort string, o serverOpts) error {
	if o.replicaID == "" {
		o.replicaID = "wasnd-" + hostPort
	}
	cfg.ReplicaID = o.replicaID
	// The snapshotter is created after the service (its export closure
	// needs it), but state changes only arrive once the listener serves
	// requests — by then sn is set.
	var sn *fleet.Snapshotter
	cfg.OnStateChange = func() {
		if sn != nil {
			sn.Notify()
		}
	}
	svc := serve.New(cfg)
	defer svc.Close() // stop the flight-recorder sampler goroutine
	if o.snapshotDir != "" {
		if err := os.MkdirAll(o.snapshotDir, 0o755); err != nil {
			return fmt.Errorf("snapshot dir: %w", err)
		}
		path := filepath.Join(o.snapshotDir, "wasnd.snap")
		if snap, err := fleet.ReadSnapshotFile(path); err == nil {
			if err := svc.RestoreState(snap.States); err != nil {
				return fmt.Errorf("snapshot restore: %w", err)
			}
			logger.Info("snapshot restored", "path", path, "deployments", len(snap.States))
		} else if !errors.Is(err, os.ErrNotExist) {
			// A corrupt snapshot is a hard error: silently booting empty
			// would serve wrong routes under the same deployment names.
			return fmt.Errorf("snapshot load: %w", err)
		}
		sn = fleet.NewSnapshotter(fleet.SnapshotterConfig{
			Path: path,
			Export: func() fleet.Snapshot {
				return fleet.Snapshot{TakenUnixMS: uint64(time.Now().UnixMilli()), States: svc.ExportState()}
			},
			OnError: func(err error) { logger.Error("snapshot write failed", "err", err) },
		})
		defer sn.Close() // final flush: shutdown never loses acked churn
	}
	var binAddr string
	if o.binaryPort >= 0 {
		bln, err := net.Listen("tcp", fmt.Sprintf(":%d", o.binaryPort))
		if err != nil {
			return fmt.Errorf("binary listener: %w", err)
		}
		bin := fleet.NewBinaryServer(svc, bln)
		defer bin.Close()
		binAddr = advertiseAddr(bln.Addr())
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	// Overlay /readyz with the resolved addresses: with -addr :0 this is
	// where a probe (or the fleet health loop) learns where the replica
	// actually lives.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"ok": true, "replica_id": o.replicaID, "deployments": len(svc.Deployments()),
			"addr": hostPort, "binary_addr": binAddr,
		})
	})
	if o.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Fprintf(out, "wasnd listening on %s", hostPort)
	if binAddr != "" {
		fmt.Fprintf(out, " (binary %s)", binAddr)
	}
	fmt.Fprintln(out)
	logger.Info("wasnd listening", "addr", hostPort, "binary", binAddr, "replica", o.replicaID, "pprof", o.pprof)
	srv := &http.Server{Handler: requestLog(logger, mux)}
	// Join only after the HTTP server accepts requests: the router
	// health-probes /readyz and may push /restore immediately.
	var afterStart func() error
	if o.joinURL != "" {
		afterStart = func() error {
			if err := joinFleet(o.joinURL, fleet.Replica{ID: o.replicaID, Addr: "http://" + hostPort, BinaryAddr: binAddr}); err != nil {
				return err
			}
			logger.Info("joined fleet", "router", o.joinURL, "replica", o.replicaID)
			return nil
		}
	}
	return serveAndDrain(logger, srv, ln, afterStart)
}

// serveAndDrain serves ln until SIGINT/SIGTERM, then drains in-flight
// requests via http.Server.Shutdown so HTTP-mode load runs end
// cleanly. afterStart (when non-nil) runs once the serve goroutine is
// up; its error aborts the server.
func serveAndDrain(logger *slog.Logger, srv *http.Server, ln net.Listener, afterStart func() error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.Serve(ln)
	}()
	if afterStart != nil {
		if err := afterStart(); err != nil {
			srv.Close()
			<-errCh
			return err
		}
	}
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C kills hard
		logger.Info("wasnd draining", "timeout", "10s")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Info("wasnd drained cleanly")
		return nil
	}
}

// advertiseAddr rewrites a bound listener address into one other
// processes can dial: the wildcard hosts a ":0"-style -addr binds to
// become loopback (the fleet CI job runs everything on one machine;
// multi-host fleets pass explicit -addr hosts).
func advertiseAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// joinFleet registers the replica with the router, retrying briefly so
// a fleet script may start replicas and router concurrently.
func joinFleet(routerURL string, rep fleet.Replica) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(routerURL, "/") + "/join"
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		// A 4xx is a config error (duplicate ID, bad addr) that retrying
		// cannot fix.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return fmt.Errorf("join %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
		}
		lastErr = fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return fmt.Errorf("join %s: %w", url, lastErr)
}

// requestLog assigns each request a sequential ID (echoed in the
// X-Request-Id response header so a client error report names the
// exact server-side log line) and logs method, path, status and
// latency at debug level.
func requestLog(logger *slog.Logger, next http.Handler) http.Handler {
	var seq atomic.Uint64
	debugOn := logger.Enabled(context.Background(), slog.LevelDebug)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%08x", seq.Add(1))
		w.Header().Set("X-Request-Id", id)
		if !debugOn {
			next.ServeHTTP(w, r)
			return
		}
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(lw, r)
		logger.Debug("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", lw.status, "dur_us", time.Since(start).Microseconds())
	})
}

// loggingWriter captures the response status for the request log.
type loggingWriter struct {
	http.ResponseWriter
	status int
}

func (w *loggingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// loadScenario resolves -scenario (a JSON file) or -preset.
func loadScenario(file, preset string) (*workload.Scenario, error) {
	if file != "" {
		return workload.ParseFile(file)
	}
	return workload.Preset(preset)
}

// applyOverrides lets the quick-tour flags tweak a canned scenario
// without writing a JSON file. Zero values leave the scenario as is.
func applyOverrides(sc *workload.Scenario, model string, n int, seed uint64, alg string, rate float64, durMS, reqs, conc int) {
	if model != "" {
		sc.Deployment.Model = model
	}
	if n > 0 {
		sc.Deployment.N = n
	}
	if seed != 0 {
		sc.Deployment.Seed = seed
	}
	if alg != "" {
		sc.Algorithm = alg
	}
	if rate > 0 {
		sc.Arrival.RateHz = rate
	}
	if durMS > 0 {
		sc.Arrival.DurationMS = durMS
	}
	if reqs > 0 {
		sc.Arrival.Requests = reqs
	}
	if conc > 0 {
		sc.Arrival.Concurrency = conc
	}
}

// runLoad executes the scenario, prints the human summary, writes the
// full JSON report to -out and the trace to -record when given, and
// exits nonzero when the engine reported request errors or shed load —
// a smoke job must not pass on a failing run.
func runLoad(out, prog io.Writer, sc *workload.Scenario, driver, target, outFile, recordFile string, cfg serve.Config) error {
	drv, err := workload.NewDriver(driver, target, cfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	var rec *workload.Recorder
	if recordFile != "" {
		rec = workload.NewRecorder(drv)
		drv = rec
	}
	fmt.Fprintf(out, "wasnd load: scenario %s, driver %s\n", sc.Name, drv.Name())
	rep, err := workload.RunWith(drv, sc, workload.Options{Progress: prog})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if err := writeArtifacts(out, rep, rec, outFile, recordFile); err != nil {
		return err
	}
	return reportExitErr(rep)
}

// runReplay re-issues a recorded trace, optionally verifying the
// outcome against the trace's summary and re-recording it.
func runReplay(out io.Writer, traceFile, driver, target, outFile, recordFile string, verify, paced bool, cfg serve.Config) error {
	tr, err := workload.ReadTraceFile(traceFile)
	if err != nil {
		return err
	}
	drv, err := workload.NewDriver(driver, target, cfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	var rec *workload.Recorder
	if recordFile != "" {
		rec = workload.NewRecorder(drv)
		drv = rec
	}
	fmt.Fprintf(out, "wasnd replay: %s (%d events), driver %s\n", traceFile, len(tr.Events), drv.Name())
	rep, err := workload.Replay(drv, tr, workload.ReplayOptions{Paced: paced})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if err := writeArtifacts(out, rep, rec, outFile, recordFile); err != nil {
		return err
	}
	if verify {
		// -verify makes summary agreement the exit criterion: a trace
		// recorded from a run that itself had request errors must exit
		// zero when the replay reproduces those errors exactly —
		// that's a faithful reproduction, not a failure.
		if err := tr.VerifySummary(rep); err != nil {
			return err
		}
		fmt.Fprintln(out, "replay verified: outcome counts match the recorded run")
		return nil
	}
	return reportExitErr(rep)
}

// runSweep runs the capacity ladder, writes the curve artifact, and
// gates against a baseline curve when one is given.
func runSweep(out, prog io.Writer, cfgFile, driver, target, outFile, baselineFile string, tol sweep.Tolerance, svcCfg serve.Config) error {
	cfg, err := sweep.ParseConfigFile(cfgFile)
	if err != nil {
		return err
	}
	drv, err := workload.NewDriver(driver, target, svcCfg)
	if err != nil {
		return err
	}
	defer drv.Close()
	fmt.Fprintf(out, "wasnd sweep: %s, %d rungs %.0f..%.0f req/s (%s), driver %s\n",
		cfg.Name, cfg.Steps, cfg.MinRateHz, cfg.MaxRateHz, cfg.Mode, drv.Name())
	curve, err := sweep.Run(drv, cfg, sweep.Options{
		Progress: func(r sweep.Rung) {
			fmt.Fprintf(out, "  rung %7.0f req/s: achieved %7.0f, delivered %.2f%%, p99 %.1fus\n",
				r.OfferedRPS, r.AchievedRPS, 100*r.DeliveryRate, r.Latency.P99us)
		},
		ProgressWriter: prog,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, curve.Summary())
	if outFile != "" {
		if err := curve.WriteFile(outFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "curve written to %s\n", outFile)
	}
	if baselineFile != "" {
		base, err := sweep.ParseCurveFile(baselineFile)
		if err != nil {
			return err
		}
		if regs := sweep.Compare(curve, base, tol); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(out, "REGRESSION: %s\n", r)
			}
			return fmt.Errorf("%d perf regression(s) against %s", len(regs), baselineFile)
		}
		fmt.Fprintf(out, "no regressions against %s\n", baselineFile)
		if imps := sweep.Improvements(curve, base, tol); len(imps) > 0 {
			// Never a failure — but a stale baseline undersells the
			// system and would let regressions of the improvement's size
			// pass, so tell the author to re-record it.
			for _, m := range imps {
				fmt.Fprintf(out, "IMPROVEMENT: %s\n", m)
			}
			fmt.Fprintf(out, "baseline %s is stale; regenerate it (recipe in .github/perf/README.md)\n", baselineFile)
		}
	}
	return nil
}

// writeArtifacts persists the report (-out) and trace (-record) files.
func writeArtifacts(out io.Writer, rep *workload.Report, rec *workload.Recorder, outFile, recordFile string) error {
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", outFile)
	}
	if rec != nil {
		if err := rec.WriteFile(recordFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", recordFile)
	}
	return nil
}

// reportExitErr maps a completed run's failure counters to a nonzero
// exit: request errors always, shed arrivals because an overloaded
// open loop is a failed run for CI purposes (the report itself still
// prints and persists first).
func reportExitErr(rep *workload.Report) error {
	if rep.Errors > 0 {
		return fmt.Errorf("run completed with %d request errors (first: %s)", rep.Errors, rep.ErrorSample)
	}
	if rep.Dropped > 0 {
		return fmt.Errorf("run shed %d arrivals: offered load exceeded what the driver could absorb", rep.Dropped)
	}
	return nil
}
