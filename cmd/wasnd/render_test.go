package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRenderBenchArtifacts renders the checked-in BENCH aggregates —
// the CI smoke that fails when their schema drifts away from what the
// renderer validates.
func TestRenderBenchArtifacts(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_pr4.json", "BENCH_pr5.json", "BENCH_pr7.json", "BENCH_pr8.json"} {
		in := filepath.Join("..", "..", name)
		if _, err := os.Stat(in); err != nil {
			t.Fatalf("checked-in artifact missing: %v", err)
		}
		outSVG := filepath.Join(dir, name+".svg")
		var out bytes.Buffer
		if err := run([]string{"-render", in, "-out", outSVG}, &out); err != nil {
			t.Fatalf("render %s: %v\n%s", name, err, out.String())
		}
		svg, err := os.ReadFile(outSVG)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(svg, []byte("<svg")) || !bytes.Contains(svg, []byte("</svg>")) {
			t.Fatalf("render %s: output is not an SVG document", name)
		}
		if !strings.Contains(out.String(), "rendered") {
			t.Fatalf("render %s: no confirmation:\n%s", name, out.String())
		}
	}
}

// TestRenderLoadReportRoundTrip runs a tiny churny load with the
// sampler on (the wasnd default) and renders the resulting report —
// the report must embed the flight-recorder timeline and the figure
// must include the server-sampled panels.
func TestRenderLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	scFile := filepath.Join(dir, "sc.json")
	repFile := filepath.Join(dir, "rep.json")
	svgFile := filepath.Join(dir, "rep.svg")
	sc := `{
  "name": "render-rt",
  "deployment": {"model": "fa", "n": 300, "seed": 7},
  "algorithm": "SLGF2",
  "arrival": {"process": "poisson", "rate_hz": 800, "duration_ms": 600},
  "traffic": {"pattern": "uniform"},
  "churn": [{"at_ms": 250, "fail_random": 3}],
  "warmup_requests": 50
}`
	if err := os.WriteFile(scFile, []byte(sc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-load", "-scenario", scFile, "-sample-every", "100", "-out", repFile}, &out)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "flight recorder:") {
		t.Fatalf("summary lacks the flight-recorder line:\n%s", out.String())
	}
	var rep struct {
		SampledTimeline *json.RawMessage `json:"sampled_timeline"`
		Journal         []any            `json:"journal"`
	}
	data, err := os.ReadFile(repFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SampledTimeline == nil || len(rep.Journal) == 0 {
		t.Fatalf("report lacks sampled_timeline/journal (timeline nil: %v, %d events)",
			rep.SampledTimeline == nil, len(rep.Journal))
	}

	out.Reset()
	if err := run([]string{"-render", repFile, "-out", svgFile}, &out); err != nil {
		t.Fatalf("render: %v\n%s", err, out.String())
	}
	svg, err := os.ReadFile(svgFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Client throughput", "Server sampled throughput", "Server repair p99"} {
		if !strings.Contains(string(svg), want) {
			t.Fatalf("rendered figure lacks panel %q", want)
		}
	}
}

// TestRenderCurve renders a handcrafted capacity-curve artifact with
// knee and cliff markers.
func TestRenderCurve(t *testing.T) {
	dir := t.TempDir()
	curveFile := filepath.Join(dir, "curve.json")
	svgFile := filepath.Join(dir, "curve.svg")
	curve := `{
  "name": "tiny", "scenario": "s", "driver": "inprocess",
  "deployment": {"model": "fa", "n": 300, "seed": 7},
  "algorithm": "SLGF2", "mode": "geometric",
  "knee_tolerance": 0.05, "cliff_factor": 4,
  "rungs": [
    {"offered_rps": 100, "achieved_rps": 100, "requests": 10, "delivery_rate": 1, "cached_share": 0.5,
     "latency": {"p50_us": 10, "p90_us": 20, "p99_us": 30, "p999_us": 40, "mean_us": 12, "max_us": 50},
     "elapsed_ms": 100},
    {"offered_rps": 400, "achieved_rps": 250, "requests": 25, "delivery_rate": 0.9, "cached_share": 0.6,
     "latency": {"p50_us": 40, "p90_us": 100, "p99_us": 200, "p999_us": 300, "mean_us": 60, "max_us": 400},
     "elapsed_ms": 100, "saturated": true}
  ],
  "knee_rung": 1, "knee_rps": 400, "cliff_rung": 1, "cliff_rps": 400
}`
	if err := os.WriteFile(curveFile, []byte(curve), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-render", curveFile, "-out", svgFile}, &out); err != nil {
		t.Fatalf("render: %v\n%s", err, out.String())
	}
	svg, err := os.ReadFile(svgFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Delivery &amp; cached share", "Latency", "Achieved vs offered", "knee", "cliff"} {
		if !strings.Contains(string(svg), want) {
			t.Fatalf("curve figure lacks %q", want)
		}
	}
}

// TestRenderRejectsMalformed pins the schema-drift gate: rung arrays
// with missing or mistyped curve fields fail the render.
func TestRenderRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing-p99", `{"x": {"rungs": [{"offered_rps": 10, "delivery_rate": 1}]}}`, "p99_us"},
		{"missing-x", `{"x": {"rungs": [{"delivery_rate": 1, "p99_us": 5}]}}`, "no axis_value"},
		{"mistyped-delivery", `{"x": {"rungs": [{"offered_rps": 10, "delivery_rate": "high", "p99_us": 5}]}}`, "not a number"},
		{"empty-rungs", `{"x": {"rungs": []}}`, "empty"},
		{"nothing", `{"bench": {"ns_per_op": 120}}`, "no report timeline or curve rungs"},
		{"not-object", `[1, 2, 3]`, "not an object"},
		{"bad-json", `{`, "bad JSON"},
	}
	for _, tc := range cases {
		in := filepath.Join(dir, tc.name+".json")
		if err := os.WriteFile(in, []byte(tc.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run([]string{"-render", in, "-out", filepath.Join(dir, tc.name+".svg")}, &out)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v; want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// Mode exclusivity.
	var out bytes.Buffer
	if err := run([]string{"-render", "x.json", "-load"}, &out); err == nil ||
		!strings.Contains(err.Error(), "exclusive") {
		t.Fatalf("-render combined with -load accepted: %v", err)
	}
}
