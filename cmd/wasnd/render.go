package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/straightpath/wasn/internal/svgplot"
	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/workload"
)

// runRender implements wasnd -render: turn a JSON artifact — a workload
// report (-load -out), a capacity curve (-sweep -out), or a checked-in
// BENCH_*.json aggregate — into a multi-panel SVG trajectory figure.
// Detection is structural: a top-level report renders its timeline, a
// top-level curve its rungs, and anything else is walked for embedded
// rung arrays and reports. Malformed or missing curve fields are an
// error, not a blank panel — CI renders the checked-in artifacts to
// catch schema drift.
func runRender(out io.Writer, inPath, outPath string) error {
	data, err := os.ReadFile(inPath)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("render: %s: bad JSON: %w", inPath, err)
	}
	top, ok := doc.(map[string]any)
	if !ok {
		return fmt.Errorf("render: %s: top-level JSON is not an object", inPath)
	}

	fig := &svgplot.Figure{Title: filepath.Base(inPath)}
	panels := 0
	switch {
	case top["scenario"] != nil && top["timeline"] != nil:
		rep, err := parseReportStrict(data)
		if err != nil {
			return fmt.Errorf("render: %s: %w", inPath, err)
		}
		panels = renderReport(fig, "", rep)
	case top["rungs"] != nil:
		curve, err := sweep.ParseCurve(data)
		if err != nil {
			return fmt.Errorf("render: %s: %w", inPath, err)
		}
		panels, err = renderCurve(fig, "", curve)
		if err != nil {
			return fmt.Errorf("render: %s: %w", inPath, err)
		}
	default:
		panels, err = renderBenchTree(fig, "", top)
		if err != nil {
			return fmt.Errorf("render: %s: %w", inPath, err)
		}
	}
	if panels == 0 {
		return fmt.Errorf("render: %s: no report timeline or curve rungs found to render", inPath)
	}

	if outPath == "" {
		outPath = strings.TrimSuffix(inPath, ".json") + ".svg"
	}
	f, err := os.Create(outPath)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	if _, err := fig.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("render: writing %s: %w", outPath, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("render: %w", err)
	}
	fmt.Fprintf(out, "rendered %d panels from %s to %s\n", panels, inPath, outPath)
	return nil
}

// parseReportStrict decodes a workload report, rejecting unknown fields
// (drift in either direction must fail the render, not silently skip).
func parseReportStrict(data []byte) (*workload.Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r workload.Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bad report JSON: %w", err)
	}
	if len(r.Timeline) == 0 {
		return nil, fmt.Errorf("report has no timeline buckets")
	}
	return &r, nil
}

// renderReport adds the report's trajectory panels: client throughput
// with churn markers, per-phase p99, and — when the run embedded the
// flight recorder — the server-sampled series on the same x-axis
// (seconds since run start). Returns the panel count.
func renderReport(fig *svgplot.Figure, prefix string, rep *workload.Report) int {
	title := func(s string) string {
		if prefix != "" {
			return prefix + ": " + s
		}
		return s
	}
	mark := func(c *svgplot.Chart) {
		for _, ev := range rep.Churn {
			if ev.Err != "" {
				continue
			}
			color, label := "#c0392b", fmt.Sprintf("fail %d", len(ev.Failed))
			if len(ev.Revived) > 0 {
				color, label = "#27ae60", fmt.Sprintf("revive %d", len(ev.Revived))
			}
			c.Marker(ev.AppliedMS/1000, color, label)
		}
	}

	// Client throughput from the bucketed timeline.
	xs := make([]float64, len(rep.Timeline))
	ys := make([]float64, len(rep.Timeline))
	bucketMS := rep.ElapsedMS
	if len(rep.Timeline) > 1 {
		bucketMS = float64(rep.Timeline[1].TMS - rep.Timeline[0].TMS)
	}
	for i, p := range rep.Timeline {
		xs[i] = float64(p.TMS) / 1000
		if bucketMS > 0 {
			ys[i] = float64(p.Completed) * 1000 / bucketMS
		}
	}
	thru := svgplot.NewChart(title("Client throughput (req/s)"), 760, 200)
	thru.XLabel = "seconds"
	thru.Step("completed/s", svgplot.PaletteColor(0), xs, ys)
	mark(thru)
	fig.Add(thru)
	panels := 1

	if len(rep.Phases) > 1 {
		px := make([]float64, len(rep.Phases))
		py := make([]float64, len(rep.Phases))
		for i, ph := range rep.Phases {
			px[i] = ph.StartMS / 1000
			py[i] = ph.Latency.P99us
		}
		lat := svgplot.NewChart(title("Per-phase p99 (us)"), 760, 180)
		lat.XLabel = "seconds"
		lat.Step("p99", svgplot.PaletteColor(1), px, py)
		mark(lat)
		fig.Add(lat)
		panels++
	}

	if win := rep.SampledTimeline; win != nil && len(win.TUnixMS) > 0 && rep.StartUnixMs > 0 {
		sx := make([]float64, len(win.TUnixMS))
		for i, t := range win.TUnixMS {
			sx[i] = float64(t-rep.StartUnixMs) / 1000
		}
		pts := func(name string) []float64 {
			if s := win.Find(name); s != nil {
				return s.Points
			}
			return nil
		}
		srv := svgplot.NewChart(title("Server sampled throughput (req/s)"), 760, 180)
		srv.XLabel = "seconds"
		srv.Step("routes/s", svgplot.PaletteColor(0), sx, pts("routes_per_s"))
		srv.Step("computed/s", svgplot.PaletteColor(1), sx, pts("computed_per_s"))
		mark(srv)
		fig.Add(srv)

		rp := svgplot.NewChart(title("Server repair p99 by substrate (us)"), 760, 180)
		rp.XLabel = "seconds"
		rp.Step("total", svgplot.PaletteColor(0), sx, pts("repair_p99_us"))
		rp.Step("safety", svgplot.PaletteColor(1), sx, pts("repair_safety_p99_us"))
		rp.Step("bound", svgplot.PaletteColor(2), sx, pts("repair_bound_p99_us"))
		rp.Step("planar", svgplot.PaletteColor(3), sx, pts("repair_planar_p99_us"))
		mark(rp)
		fig.Add(rp)
		panels += 2
	}
	return panels
}

// renderCurve adds a typed capacity curve's panels: delivery and cache
// share over the swept axis, latency (log-y), and — for rate sweeps —
// achieved vs offered, with knee and cliff markers.
func renderCurve(fig *svgplot.Figure, prefix string, c *sweep.CapacityCurve) (int, error) {
	if len(c.Rungs) == 0 {
		return 0, fmt.Errorf("curve %q has no rungs", c.Name)
	}
	title := func(s string) string {
		if prefix != "" {
			return prefix + ": " + s
		}
		return s
	}
	xlabel := "offered req/s"
	if c.Axis != "" && c.Axis != sweep.AxisRate {
		xlabel = c.Axis
	}
	xs := make([]float64, len(c.Rungs))
	del := make([]float64, len(c.Rungs))
	cached := make([]float64, len(c.Rungs))
	p50 := make([]float64, len(c.Rungs))
	p99 := make([]float64, len(c.Rungs))
	offered := make([]float64, len(c.Rungs))
	achieved := make([]float64, len(c.Rungs))
	for i, r := range c.Rungs {
		xs[i] = r.OfferedRPS
		if r.AxisValue != 0 {
			xs[i] = r.AxisValue
		}
		del[i] = r.DeliveryRate
		cached[i] = r.CachedShare
		p50[i] = r.Latency.P50us
		p99[i] = r.Latency.P99us
		offered[i] = r.OfferedRPS
		achieved[i] = r.AchievedRPS
	}
	mark := func(ch *svgplot.Chart) {
		if c.KneeRung >= 0 && c.KneeRung < len(xs) {
			ch.Marker(xs[c.KneeRung], "#b07818", "knee")
		}
		if c.CliffRung >= 0 && c.CliffRung < len(xs) {
			ch.Marker(xs[c.CliffRung], "#c0392b", "cliff")
		}
	}

	dch := svgplot.NewChart(title("Delivery & cached share"), 760, 200)
	dch.XLabel, dch.YMax = xlabel, 1
	dch.Line("delivered", svgplot.PaletteColor(2), xs, del)
	dch.Line("cached", svgplot.PaletteColor(3), xs, cached)
	mark(dch)
	fig.Add(dch)

	lch := svgplot.NewChart(title("Latency (us)"), 760, 200)
	lch.XLabel, lch.LogY = xlabel, true
	lch.Line("p50", svgplot.PaletteColor(0), xs, p50)
	lch.Line("p99", svgplot.PaletteColor(1), xs, p99)
	mark(lch)
	fig.Add(lch)
	panels := 2

	if c.Axis == "" || c.Axis == sweep.AxisRate {
		ach := svgplot.NewChart(title("Achieved vs offered (req/s)"), 760, 200)
		ach.XLabel = "offered req/s"
		ach.Line("achieved", svgplot.PaletteColor(0), offered, achieved)
		ach.Line("offered", "#bbbbbb", offered, offered)
		mark(ach)
		fig.Add(ach)
		panels++
	}
	return panels, nil
}

// renderBenchTree walks an aggregate BENCH document for embedded rung
// arrays (any "rungs" key) and embedded workload reports (objects with
// both "timeline" and "latency"), rendering each with its JSON path as
// the panel prefix. A found rung array with malformed or missing fields
// is an error — the schema-drift gate.
func renderBenchTree(fig *svgplot.Figure, path string, node any) (int, error) {
	obj, ok := node.(map[string]any)
	if !ok {
		return 0, nil
	}
	if rungs, ok := obj["rungs"].([]any); ok {
		n, err := renderBenchRungs(fig, path, rungs)
		if err != nil {
			return 0, err
		}
		return n, nil
	}
	if obj["timeline"] != nil && obj["latency"] != nil {
		data, err := json.Marshal(obj)
		if err != nil {
			return 0, err
		}
		rep, err := parseReportStrict(data)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		return renderReport(fig, path, rep), nil
	}
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		p := k
		if path != "" {
			p = path + "." + k
		}
		n, err := renderBenchTree(fig, p, obj[k])
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// benchNum extracts a required numeric field from a generic rung.
func benchNum(path string, i int, r map[string]any, key string) (float64, error) {
	v, ok := r[key]
	if !ok {
		return 0, fmt.Errorf("%s.rungs[%d]: missing %s", path, i, key)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("%s.rungs[%d]: %s is %T, not a number", path, i, key, v)
	}
	return f, nil
}

// benchP99 accepts both rung latency encodings: flat p99_us (the BENCH
// aggregates) or a nested latency object (full workload.Latency).
func benchP99(path string, i int, r map[string]any) (float64, error) {
	if _, ok := r["p99_us"]; ok {
		return benchNum(path, i, r, "p99_us")
	}
	if lat, ok := r["latency"].(map[string]any); ok {
		v, ok := lat["p99_us"].(float64)
		if !ok {
			return 0, fmt.Errorf("%s.rungs[%d]: latency.p99_us missing or not a number", path, i)
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s.rungs[%d]: no p99_us or latency.p99_us", path, i)
}

// benchXKey picks the rung x-axis: the most specific of axis_value,
// fail_per_s, offered_rps present in the first rung. Every rung must
// then carry it.
func benchXKey(path string, rungs []any) (string, error) {
	first, ok := rungs[0].(map[string]any)
	if !ok {
		return "", fmt.Errorf("%s.rungs[0]: not an object", path)
	}
	for _, k := range []string{"axis_value", "fail_per_s", "offered_rps"} {
		if _, ok := first[k]; ok {
			return k, nil
		}
	}
	return "", fmt.Errorf("%s.rungs[0]: no axis_value, fail_per_s or offered_rps field", path)
}

// renderBenchRungs renders one generic rung array as a delivery panel
// and a latency panel, validating every rung's fields.
func renderBenchRungs(fig *svgplot.Figure, path string, rungs []any) (int, error) {
	if len(rungs) == 0 {
		return 0, fmt.Errorf("%s.rungs: empty", path)
	}
	xkey, err := benchXKey(path, rungs)
	if err != nil {
		return 0, err
	}
	xs := make([]float64, len(rungs))
	del := make([]float64, len(rungs))
	p99 := make([]float64, len(rungs))
	for i, rv := range rungs {
		r, ok := rv.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("%s.rungs[%d]: not an object", path, i)
		}
		if xs[i], err = benchNum(path, i, r, xkey); err != nil {
			return 0, err
		}
		if del[i], err = benchNum(path, i, r, "delivery_rate"); err != nil {
			return 0, err
		}
		if p99[i], err = benchP99(path, i, r); err != nil {
			return 0, err
		}
	}

	dch := svgplot.NewChart(path+": delivery rate", 760, 200)
	dch.XLabel, dch.YMax = xkey, 1
	dch.Line("delivered", svgplot.PaletteColor(2), xs, del)
	fig.Add(dch)

	lch := svgplot.NewChart(path+": p99 latency (us)", 760, 200)
	lch.XLabel, lch.LogY = xkey, true
	lch.Line("p99", svgplot.PaletteColor(1), xs, p99)
	fig.Add(lch)
	return 2, nil
}
