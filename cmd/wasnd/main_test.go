package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/workload"
)

// TestReportExitErr pins the -load exit-code contract: request errors
// and shed load surface as a nonzero exit, a clean run does not.
func TestReportExitErr(t *testing.T) {
	if err := reportExitErr(&workload.Report{Requests: 10, Delivered: 10}); err != nil {
		t.Fatalf("clean run mapped to exit error: %v", err)
	}
	err := reportExitErr(&workload.Report{Requests: 10, Errors: 2, ErrorSample: "boom"})
	if err == nil || !strings.Contains(err.Error(), "2 request errors") {
		t.Fatalf("request errors not surfaced: %v", err)
	}
	err = reportExitErr(&workload.Report{Requests: 10, Dropped: 5})
	if err == nil || !strings.Contains(err.Error(), "shed 5") {
		t.Fatalf("shed load not surfaced: %v", err)
	}
}

// TestLoadRecordReplayCLI runs the full CLI loop: -load -record a tiny
// run, then -replay -verify the trace — the perf-gate's replay leg.
func TestLoadRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.trace.jsonl")
	var out bytes.Buffer
	err := run([]string{"-load", "-preset", "steady", "-n", "300", "-seed", "7",
		"-rate", "800", "-duration", "300", "-record", trace}, &out)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace written to") {
		t.Fatalf("no trace confirmation in output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-replay", trace, "-verify"}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay verified") {
		t.Fatalf("replay did not verify:\n%s", out.String())
	}
}

// TestSweepCLI runs a tiny sweep through the CLI, checks the curve
// artifact, and gates a second sweep against it as its own baseline.
func TestSweepCLI(t *testing.T) {
	dir := t.TempDir()
	cfgFile := filepath.Join(dir, "sweep.json")
	curveFile := filepath.Join(dir, "curve.json")
	cfg := `{
  "name": "cli-tiny",
  "scenario": {
    "name": "cli-tiny",
    "deployment": {"model": "fa", "n": 300, "seed": 7},
    "algorithm": "SLGF2",
    "arrival": {"process": "poisson", "rate_hz": 500, "duration_ms": 150},
    "traffic": {"pattern": "uniform", "pairs": 64},
    "warmup_requests": 100
  },
  "min_rate_hz": 500,
  "max_rate_hz": 2000,
  "steps": 3
}`
	if err := os.WriteFile(cfgFile, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-sweep", cfgFile, "-out", curveFile}, &out); err != nil {
		t.Fatalf("sweep: %v\n%s", err, out.String())
	}
	curve, err := sweep.ParseCurveFile(curveFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Rungs) != 3 {
		t.Fatalf("curve has %d rungs; want 3", len(curve.Rungs))
	}
	// Gate a fresh sweep against the curve we just produced. The p99
	// band is deliberately huge: open-loop tail latency is scheduler-
	// noisy on a loaded single-core box, and this test pins the gate
	// *plumbing* — the band arithmetic itself is pinned in
	// internal/sweep's Compare tests.
	out.Reset()
	if err := run([]string{"-sweep", cfgFile, "-baseline", curveFile, "-p99-tol", "50"}, &out); err != nil {
		t.Fatalf("self-baseline gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("no gate confirmation in output:\n%s", out.String())
	}
}

// TestCheckMetricsCLI drives a tiny HTTP-mode load against an in-test
// wasnd handler (with a CPU profile and live progress on), then runs
// the -check-metrics gate against its exposition — the exact probe the
// CI smoke job performs mid-run.
func TestCheckMetricsCLI(t *testing.T) {
	svc := serve.New(serve.Config{TraceSampleEvery: 4, StretchSampleEvery: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	dir := t.TempDir()
	profFile := filepath.Join(dir, "cpu.pprof")
	var out bytes.Buffer
	err := run([]string{"-load", "-preset", "steady", "-n", "300", "-seed", "7",
		"-rate", "800", "-duration", "300",
		"-driver", "http", "-target", ts.URL,
		"-cpuprofile", profFile, "-progress"}, &out)
	if err != nil {
		t.Fatalf("load over http: %v\n%s", err, out.String())
	}
	if st, err := os.Stat(profFile); err != nil || st.Size() == 0 {
		t.Fatalf("-cpuprofile wrote nothing: %v", err)
	}

	out.Reset()
	if err := run([]string{"-check-metrics", ts.URL + "/metrics"}, &out); err != nil {
		t.Fatalf("check-metrics gate failed on a healthy server: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "metrics ok") {
		t.Fatalf("no gate confirmation:\n%s", out.String())
	}

	// An exposition missing the contract series must fail the gate.
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# HELP up up\n# TYPE up gauge\nup 1\n")
	}))
	defer empty.Close()
	if err := run([]string{"-check-metrics", empty.URL + "/metrics"}, &out); err == nil ||
		!strings.Contains(err.Error(), "missing required series") {
		t.Fatalf("gate passed an exposition without the contract series: %v", err)
	}
}

// TestFlagValidation pins the new flags' rejection paths: bad log
// flags and -check-metrics mode exclusivity are errors, not no-ops.
func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-log-level", "shouty"}, &out); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bad -log-level accepted: %v", err)
	}
	if err := run([]string{"-log-format", "xml"}, &out); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Fatalf("bad -log-format accepted: %v", err)
	}
	if err := run([]string{"-check-metrics", "http://x/metrics", "-load"}, &out); err == nil ||
		!strings.Contains(err.Error(), "exclusive") {
		t.Fatalf("-check-metrics combined with -load accepted: %v", err)
	}
}
