package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/straightpath/wasn/internal/serve"
	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/workload"
)

// TestReportExitErr pins the -load exit-code contract: request errors
// and shed load surface as a nonzero exit, a clean run does not.
func TestReportExitErr(t *testing.T) {
	if err := reportExitErr(&workload.Report{Requests: 10, Delivered: 10}); err != nil {
		t.Fatalf("clean run mapped to exit error: %v", err)
	}
	err := reportExitErr(&workload.Report{Requests: 10, Errors: 2, ErrorSample: "boom"})
	if err == nil || !strings.Contains(err.Error(), "2 request errors") {
		t.Fatalf("request errors not surfaced: %v", err)
	}
	err = reportExitErr(&workload.Report{Requests: 10, Dropped: 5})
	if err == nil || !strings.Contains(err.Error(), "shed 5") {
		t.Fatalf("shed load not surfaced: %v", err)
	}
}

// TestLoadRecordReplayCLI runs the full CLI loop: -load -record a tiny
// run, then -replay -verify the trace — the perf-gate's replay leg.
func TestLoadRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.trace.jsonl")
	var out bytes.Buffer
	err := run([]string{"-load", "-preset", "steady", "-n", "300", "-seed", "7",
		"-rate", "800", "-duration", "300", "-record", trace}, &out)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace written to") {
		t.Fatalf("no trace confirmation in output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-replay", trace, "-verify"}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay verified") {
		t.Fatalf("replay did not verify:\n%s", out.String())
	}
}

// TestSweepCLI runs a tiny sweep through the CLI, checks the curve
// artifact, and gates a second sweep against it as its own baseline.
func TestSweepCLI(t *testing.T) {
	dir := t.TempDir()
	cfgFile := filepath.Join(dir, "sweep.json")
	curveFile := filepath.Join(dir, "curve.json")
	cfg := `{
  "name": "cli-tiny",
  "scenario": {
    "name": "cli-tiny",
    "deployment": {"model": "fa", "n": 300, "seed": 7},
    "algorithm": "SLGF2",
    "arrival": {"process": "poisson", "rate_hz": 500, "duration_ms": 150},
    "traffic": {"pattern": "uniform", "pairs": 64},
    "warmup_requests": 100
  },
  "min_rate_hz": 500,
  "max_rate_hz": 2000,
  "steps": 3
}`
	if err := os.WriteFile(cfgFile, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-sweep", cfgFile, "-out", curveFile}, &out); err != nil {
		t.Fatalf("sweep: %v\n%s", err, out.String())
	}
	curve, err := sweep.ParseCurveFile(curveFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Rungs) != 3 {
		t.Fatalf("curve has %d rungs; want 3", len(curve.Rungs))
	}
	// Gate a fresh sweep against the curve we just produced. The p99
	// band is deliberately huge: open-loop tail latency is scheduler-
	// noisy on a loaded single-core box, and this test pins the gate
	// *plumbing* — the band arithmetic itself is pinned in
	// internal/sweep's Compare tests.
	out.Reset()
	if err := run([]string{"-sweep", cfgFile, "-baseline", curveFile, "-p99-tol", "50"}, &out); err != nil {
		t.Fatalf("self-baseline gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("no gate confirmation in output:\n%s", out.String())
	}
}

// TestCheckMetricsCLI drives a tiny HTTP-mode load against an in-test
// wasnd handler (with a CPU profile and live progress on), then runs
// the -check-metrics gate against its exposition — the exact probe the
// CI smoke job performs mid-run.
func TestCheckMetricsCLI(t *testing.T) {
	svc := serve.New(serve.Config{TraceSampleEvery: 4, StretchSampleEvery: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	dir := t.TempDir()
	profFile := filepath.Join(dir, "cpu.pprof")
	var out bytes.Buffer
	err := run([]string{"-load", "-preset", "steady", "-n", "300", "-seed", "7",
		"-rate", "800", "-duration", "300",
		"-driver", "http", "-target", ts.URL,
		"-cpuprofile", profFile, "-progress"}, &out)
	if err != nil {
		t.Fatalf("load over http: %v\n%s", err, out.String())
	}
	if st, err := os.Stat(profFile); err != nil || st.Size() == 0 {
		t.Fatalf("-cpuprofile wrote nothing: %v", err)
	}

	out.Reset()
	if err := run([]string{"-check-metrics", ts.URL + "/metrics"}, &out); err != nil {
		t.Fatalf("check-metrics gate failed on a healthy server: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "metrics ok") {
		t.Fatalf("no gate confirmation:\n%s", out.String())
	}

	// An exposition missing the contract series must fail the gate.
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# HELP up up\n# TYPE up gauge\nup 1\n")
	}))
	defer empty.Close()
	if err := run([]string{"-check-metrics", empty.URL + "/metrics"}, &out); err == nil ||
		!strings.Contains(err.Error(), "missing required series") {
		t.Fatalf("gate passed an exposition without the contract series: %v", err)
	}
}

// TestFlagValidation pins the new flags' rejection paths: bad log
// flags and -check-metrics mode exclusivity are errors, not no-ops.
func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-log-level", "shouty"}, &out); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bad -log-level accepted: %v", err)
	}
	if err := run([]string{"-log-format", "xml"}, &out); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Fatalf("bad -log-format accepted: %v", err)
	}
	if err := run([]string{"-check-metrics", "http://x/metrics", "-load"}, &out); err == nil ||
		!strings.Contains(err.Error(), "exclusive") {
		t.Fatalf("-check-metrics combined with -load accepted: %v", err)
	}
	if err := run([]string{"-fleet"}, &out); err == nil || !strings.Contains(err.Error(), "-check-metrics") {
		t.Fatalf("-fleet without -check-metrics accepted: %v", err)
	}
	if err := run([]string{"-load", "-router"}, &out); err == nil || !strings.Contains(err.Error(), "server mode") {
		t.Fatalf("-router combined with -load accepted: %v", err)
	}
	if err := run([]string{"-router", "-join", "http://x"}, &out); err == nil || !strings.Contains(err.Error(), "replica flags") {
		t.Fatalf("-router combined with -join accepted: %v", err)
	}
}

// syncBuffer is a concurrency-safe io.Writer for capturing the stdout
// of run() invocations living in goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// spawnServer runs the CLI server in a goroutine and returns its base
// URL (parsed from the stdout "listening on" line — the -addr :0
// contract) plus the exit channel.
func spawnServer(t *testing.T, args []string) (string, <-chan error) {
	t.Helper()
	out := &syncBuffer{}
	errCh := make(chan error, 1)
	go func() { errCh <- run(args, out) }()
	var addr string
	waitFor(t, 10*time.Second, "listen line from "+strings.Join(args, " "), func() bool {
		select {
		case err := <-errCh:
			t.Fatalf("server %v exited early: %v\n%s", args, err, out.String())
		default:
		}
		m := listenRE.FindStringSubmatch(out.String())
		if m == nil {
			return false
		}
		addr = m[1]
		return true
	})
	base := "http://" + addr
	waitFor(t, 10*time.Second, "readyz on "+base, func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	return base, errCh
}

// drain sends the process SIGTERM (every spawned server has its
// NotifyContext installed once it answers HTTP) and asserts every
// server exits cleanly.
func drain(t *testing.T, servers map[string]<-chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, ch := range servers {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s exited with error: %v", name, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
}

func postCLI(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d: %v", url, resp.StatusCode, v)
	}
	return v
}

func getCLI(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %v", url, resp.StatusCode, v)
	}
	return v
}

// TestFleetServerCLI boots a router and two replicas through the real
// CLI entry point (ephemeral ports throughout), drives churn through
// the proxy tier, gates the fleet metrics contract, drains the fleet
// with SIGTERM, and reboots a replica from its snapshot — asserting
// the restored registry answers route-identically. This is the
// in-process twin of the CI fleet-chaos script.
func TestFleetServerCLI(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	routerURL, routerErr := spawnServer(t, []string{"-router", "-addr", "127.0.0.1:0"})
	rep1URL, rep1Err := spawnServer(t, []string{"-addr", "127.0.0.1:0", "-join", routerURL,
		"-replica-id", "r1", "-snapshot-dir", dir1, "-binary-port", "0"})
	_, rep2Err := spawnServer(t, []string{"-addr", "127.0.0.1:0", "-join", routerURL,
		"-replica-id", "r2", "-snapshot-dir", dir2})

	// The replica /readyz overlays the resolved addresses.
	ready := getCLI(t, rep1URL+"/readyz")
	if ready["addr"] != strings.TrimPrefix(rep1URL, "http://") {
		t.Fatalf("readyz addr overlay = %v; want %s", ready["addr"], rep1URL)
	}
	if ready["binary_addr"] == "" || ready["binary_addr"] == nil {
		t.Fatalf("readyz missing binary_addr: %v", ready)
	}

	waitFor(t, 10*time.Second, "both replicas in /stats", func() bool {
		reps, _ := getCLI(t, routerURL+"/stats")["replicas"].([]any)
		return len(reps) == 2
	})

	// Churn through the proxy tier.
	postCLI(t, routerURL+"/deploy", `{"name":"FA-200-9","model":"fa","n":200,"seed":9,"build":true}`)
	postCLI(t, routerURL+"/fail", `{"deployment":"FA-200-9","nodes":[3,4]}`)
	want := postCLI(t, routerURL+"/route", `{"deployment":"FA-200-9","algorithm":"SLGF2","src":0,"dst":150}`)

	// The metrics gate: the router exposition satisfies the fleet
	// contract, a replica exposition must not.
	var out bytes.Buffer
	if err := run([]string{"-check-metrics", routerURL + "/metrics", "-fleet"}, &out); err != nil {
		t.Fatalf("fleet metrics gate failed on the router: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "metrics ok") {
		t.Fatalf("no gate confirmation:\n%s", out.String())
	}
	if err := run([]string{"-check-metrics", rep1URL + "/metrics", "-fleet"}, &out); err == nil ||
		!strings.Contains(err.Error(), "missing required series") {
		t.Fatalf("fleet gate passed a replica exposition: %v", err)
	}

	// The owner's snapshotter must have persisted the churned registry.
	owner := getCLI(t, routerURL+"/owner?deployment=FA-200-9")
	ownerDir := dir1
	if owner["id"] == "r2" {
		ownerDir = dir2
	}
	snapFile := filepath.Join(ownerDir, "wasnd.snap")
	waitFor(t, 10*time.Second, "snapshot file "+snapFile, func() bool {
		st, err := os.Stat(snapFile)
		return err == nil && st.Size() > 0
	})

	drain(t, map[string]<-chan error{"router": routerErr, "replica r1": rep1Err, "replica r2": rep2Err})

	// Reboot a replica from the owner's snapshot: the restored registry
	// must carry the failed set and answer route-identically.
	rebootURL, rebootErr := spawnServer(t, []string{"-addr", "127.0.0.1:0", "-snapshot-dir", ownerDir})
	state := getCLI(t, rebootURL+"/state")
	states, _ := state["states"].([]any)
	if len(states) != 1 {
		t.Fatalf("restored replica has %d deployments; want 1 (%v)", len(states), state)
	}
	st := states[0].(map[string]any)
	if st["name"] != "FA-200-9" || len(st["failed"].([]any)) != 2 {
		t.Fatalf("restored state lost the churn history: %v", st)
	}
	got := postCLI(t, rebootURL+"/route", `{"deployment":"FA-200-9","algorithm":"SLGF2","src":0,"dst":150}`)
	if got["delivered"] != want["delivered"] || fmt.Sprint(got["hops"]) != fmt.Sprint(want["hops"]) {
		t.Fatalf("restored route diverged: %v != %v", got, want)
	}
	drain(t, map[string]<-chan error{"rebooted replica": rebootErr})
}
