package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/straightpath/wasn/internal/sweep"
	"github.com/straightpath/wasn/internal/workload"
)

// TestReportExitErr pins the -load exit-code contract: request errors
// and shed load surface as a nonzero exit, a clean run does not.
func TestReportExitErr(t *testing.T) {
	if err := reportExitErr(&workload.Report{Requests: 10, Delivered: 10}); err != nil {
		t.Fatalf("clean run mapped to exit error: %v", err)
	}
	err := reportExitErr(&workload.Report{Requests: 10, Errors: 2, ErrorSample: "boom"})
	if err == nil || !strings.Contains(err.Error(), "2 request errors") {
		t.Fatalf("request errors not surfaced: %v", err)
	}
	err = reportExitErr(&workload.Report{Requests: 10, Dropped: 5})
	if err == nil || !strings.Contains(err.Error(), "shed 5") {
		t.Fatalf("shed load not surfaced: %v", err)
	}
}

// TestLoadRecordReplayCLI runs the full CLI loop: -load -record a tiny
// run, then -replay -verify the trace — the perf-gate's replay leg.
func TestLoadRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.trace.jsonl")
	var out bytes.Buffer
	err := run([]string{"-load", "-preset", "steady", "-n", "300", "-seed", "7",
		"-rate", "800", "-duration", "300", "-record", trace}, &out)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace written to") {
		t.Fatalf("no trace confirmation in output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-replay", trace, "-verify"}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay verified") {
		t.Fatalf("replay did not verify:\n%s", out.String())
	}
}

// TestSweepCLI runs a tiny sweep through the CLI, checks the curve
// artifact, and gates a second sweep against it as its own baseline.
func TestSweepCLI(t *testing.T) {
	dir := t.TempDir()
	cfgFile := filepath.Join(dir, "sweep.json")
	curveFile := filepath.Join(dir, "curve.json")
	cfg := `{
  "name": "cli-tiny",
  "scenario": {
    "name": "cli-tiny",
    "deployment": {"model": "fa", "n": 300, "seed": 7},
    "algorithm": "SLGF2",
    "arrival": {"process": "poisson", "rate_hz": 500, "duration_ms": 150},
    "traffic": {"pattern": "uniform", "pairs": 64},
    "warmup_requests": 100
  },
  "min_rate_hz": 500,
  "max_rate_hz": 2000,
  "steps": 3
}`
	if err := os.WriteFile(cfgFile, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-sweep", cfgFile, "-out", curveFile}, &out); err != nil {
		t.Fatalf("sweep: %v\n%s", err, out.String())
	}
	curve, err := sweep.ParseCurveFile(curveFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Rungs) != 3 {
		t.Fatalf("curve has %d rungs; want 3", len(curve.Rungs))
	}
	// Gate a fresh sweep against the curve we just produced. The p99
	// band is deliberately huge: open-loop tail latency is scheduler-
	// noisy on a loaded single-core box, and this test pins the gate
	// *plumbing* — the band arithmetic itself is pinned in
	// internal/sweep's Compare tests.
	out.Reset()
	if err := run([]string{"-sweep", cfgFile, "-baseline", curveFile, "-p99-tol", "50"}, &out); err != nil {
		t.Fatalf("self-baseline gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("no gate confirmation in output:\n%s", out.String())
	}
}
