// Command wasngen generates random WASN deployments, prints their
// statistics (degree, connectivity, safety labeling, holes), and saves or
// loads them as JSON for reuse across tools.
//
// Usage:
//
//	wasngen -model fa -n 600 -seed 7 -o net.json
//	wasngen -i net.json -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/geom"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wasngen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wasngen", flag.ContinueOnError)
	var (
		model   = fs.String("model", "ia", "deployment model: ia or fa")
		n       = fs.Int("n", 600, "node count")
		seed    = fs.Uint64("seed", 1, "deployment seed")
		outPath = fs.String("o", "", "write the network as JSON to this path")
		inPath  = fs.String("i", "", "load a network from this JSON path instead of generating")
		stats   = fs.Bool("stats", true, "print network statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var net *topo.Network
	switch {
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = topo.ReadJSON(f)
		if err != nil {
			return err
		}
	default:
		m, err := topo.ParseDeployModel(*model)
		if err != nil {
			return err
		}
		dep, err := topo.Deploy(topo.DefaultDeployConfig(m, *n, *seed))
		if err != nil {
			return err
		}
		net = dep.Net
	}

	if *stats {
		printStats(out, net)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := net.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "written: %s\n", *outPath)
	}
	return nil
}

func printStats(out io.Writer, net *topo.Network) {
	_, comps := topo.Components(net)
	fmt.Fprintf(out, "nodes: %d  edges: %d  avg degree: %.2f  components: %d\n",
		net.N(), net.EdgeCount(), net.AvgDegree(), comps)

	m := safety.Build(net)
	unsafeCount := [geom.NumZones]int{}
	allUnsafe := 0
	for i := range net.Nodes {
		u := topo.NodeID(i)
		for _, z := range geom.AllZones {
			if m.Unsafe(u, z) {
				unsafeCount[z-1]++
			}
		}
		if m.AllUnsafe(u) {
			allUnsafe++
		}
	}
	fmt.Fprintf(out, "safety: rounds=%d messages=%d unsafe-per-type=%v tuple(0,0,0,0)=%d\n",
		m.Cost.Rounds, m.Cost.Messages, unsafeCount, allUnsafe)

	b := bound.FindHoles(net)
	largest := 0
	for _, h := range b.Holes {
		if h.Len() > largest {
			largest = h.Len()
		}
	}
	fmt.Fprintf(out, "boundhole: holes=%d largest-boundary=%d messages=%d\n",
		len(b.Holes), largest, b.MessageCount)
}
