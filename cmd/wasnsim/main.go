// Command wasnsim regenerates the paper's evaluation figures as text (or
// CSV) tables: Fig. 5 (maximum hops), Fig. 6 (average hops) and Fig. 7
// (average path length) for the GF, LGF, SLGF and SLGF2 routings under
// the IA and FA deployment models.
//
// Usage:
//
//	wasnsim -figure all -model both -networks 100 -pairs 20
//	wasnsim -figure 6 -model fa -csv
//	wasnsim -figure all -model ia -extra   # adds GPSR + ideal references
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/straightpath/wasn/internal/expt"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wasnsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wasnsim", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "all", "figure to regenerate: 5, 6, 7, or all")
		model    = fs.String("model", "both", "deployment model: ia, fa, or both")
		networks = fs.Int("networks", 100, "random networks per node count (paper: 100)")
		pairs    = fs.Int("pairs", 20, "routed source-destination pairs per network")
		seed     = fs.Uint64("seed", 1, "base seed for the sweep")
		workers  = fs.Int("workers", 0, "parallel workers (0 = NumCPU)")
		extra    = fs.Bool("extra", false, "also run GPSR and the ideal references")
		ablation = fs.Bool("ablation", false, "also run the SLGF2 ablation variants")
		asCSV    = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	metricsWanted, err := figuresFor(*figure)
	if err != nil {
		return err
	}
	models, err := modelsFor(*model)
	if err != nil {
		return err
	}

	for _, m := range models {
		cfg := expt.DefaultConfig(m, *networks, *pairs)
		cfg.BaseSeed = *seed
		cfg.Workers = *workers
		if *extra {
			cfg.Algorithms = append(cfg.Algorithms,
				expt.AlgGPSR, expt.AlgIdealHops, expt.AlgIdealLen)
		}
		if *ablation {
			cfg.Algorithms = append(cfg.Algorithms,
				expt.AlgSLGF2NoShape, expt.AlgSLGF2RightHand, expt.AlgSLGF2NoBackup)
		}
		sweep, err := expt.Run(cfg)
		if err != nil {
			return err
		}
		for _, metric := range metricsWanted {
			tbl := sweep.Table(metric)
			if *asCSV {
				fmt.Fprintf(out, "# %s\n%s\n", tbl.Title, tbl.CSV())
			} else {
				fmt.Fprintf(out, "%s\n", tbl.Text())
			}
		}
		fmt.Fprintf(out, "(%s sweep finished in %s)\n\n", m, sweep.Elapsed.Round(1e7))
	}
	return nil
}

func figuresFor(flagValue string) ([]expt.Metric, error) {
	switch strings.ToLower(flagValue) {
	case "5":
		return []expt.Metric{expt.MetricMaxHops}, nil
	case "6":
		return []expt.Metric{expt.MetricAvgHops}, nil
	case "7":
		return []expt.Metric{expt.MetricAvgLength}, nil
	case "all":
		return []expt.Metric{expt.MetricMaxHops, expt.MetricAvgHops, expt.MetricAvgLength, expt.MetricDelivery}, nil
	default:
		return nil, fmt.Errorf("unknown figure %q (want 5, 6, 7 or all)", flagValue)
	}
}

func modelsFor(flagValue string) ([]topo.DeployModel, error) {
	switch strings.ToLower(flagValue) {
	case "both":
		return []topo.DeployModel{topo.ModelIA, topo.ModelFA}, nil
	default:
		m, err := topo.ParseDeployModel(flagValue)
		if err != nil {
			return nil, err
		}
		return []topo.DeployModel{m}, nil
	}
}
