// Command wasnviz renders a deployment — holes, unsafe-area estimates,
// and one route per algorithm — as an SVG document, reproducing the style
// of the paper's Figs. 1-4 for visual verification.
//
// Usage:
//
//	wasnviz -model fa -n 600 -seed 7 -src 12 -dst 480 -o route.svg
//	wasnviz -model fa -n 600 -seed 7 -o net.svg          # random pair
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"github.com/straightpath/wasn/internal/bound"
	"github.com/straightpath/wasn/internal/core"
	"github.com/straightpath/wasn/internal/planar"
	"github.com/straightpath/wasn/internal/safety"
	"github.com/straightpath/wasn/internal/svgplot"
	"github.com/straightpath/wasn/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "wasnviz: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wasnviz", flag.ContinueOnError)
	var (
		model   = fs.String("model", "fa", "deployment model: ia or fa")
		n       = fs.Int("n", 600, "node count")
		seed    = fs.Uint64("seed", 7, "deployment seed")
		src     = fs.Int("src", -1, "source node id (-1 = random connected pair)")
		dst     = fs.Int("dst", -1, "destination node id")
		outPath = fs.String("o", "wasn.svg", "output SVG path")
		edges   = fs.Bool("edges", false, "draw every radio link")
		width   = fs.Float64("width", 900, "image width in pixels")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := topo.ParseDeployModel(*model)
	if err != nil {
		return err
	}
	dep, err := topo.Deploy(topo.DefaultDeployConfig(m, *n, *seed))
	if err != nil {
		return err
	}
	net := dep.Net

	s, d, err := pickPair(net, *src, *dst, *seed)
	if err != nil {
		return err
	}

	sm := safety.Build(net)
	b := bound.FindHoles(net)
	g := planar.Build(net, planar.GabrielGraph)
	routers := []struct {
		r     core.Router
		color string
	}{
		{r: core.NewLGF(net), color: "#b77"},
		{r: core.NewGF(net, b), color: "#7a7"},
		{r: core.NewSLGF(net, sm), color: "#77c"},
		{r: core.NewSLGF2(net, sm), color: "#06c"},
		{r: core.NewGPSR(net, g), color: "#b5b"},
	}

	canvas := svgplot.New(net.Field, *width)
	canvas.Holes(dep.Forbidden)
	canvas.Network(net, *edges)
	canvas.UnsafeAreas(sm)
	for _, rt := range routers {
		res := rt.r.Route(s, d)
		if !res.Delivered {
			fmt.Fprintf(os.Stderr, "note: %s failed (%v)\n", rt.r.Name(), res.Reason)
			continue
		}
		canvas.Route(net, res.Path, rt.color)
		fmt.Printf("%-6s hops=%-4d length=%.1f m\n", rt.r.Name(), res.Hops(), res.Length)
	}
	canvas.Label(net.Pos(s), fmt.Sprintf("s=%d", s))
	canvas.Label(net.Pos(d), fmt.Sprintf("d=%d", d))

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := canvas.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("written: %s (pair %d -> %d)\n", *outPath, s, d)
	return nil
}

func pickPair(net *topo.Network, src, dst int, seed uint64) (topo.NodeID, topo.NodeID, error) {
	if src >= 0 && dst >= 0 {
		if src >= net.N() || dst >= net.N() {
			return 0, 0, fmt.Errorf("node ids out of range [0, %d)", net.N())
		}
		return topo.NodeID(src), topo.NodeID(dst), nil
	}
	labels, _ := topo.Components(net)
	rng := rand.New(rand.NewPCG(seed, seed^0x51cc))
	for tries := 0; tries < 10_000; tries++ {
		s := topo.NodeID(rng.IntN(net.N()))
		d := topo.NodeID(rng.IntN(net.N()))
		// Prefer pairs at least half the field apart so routes are
		// interesting to look at.
		if s == d || labels[s] < 0 || labels[s] != labels[d] {
			continue
		}
		if net.Dist(s, d) < net.Field.Width()/2 {
			continue
		}
		return s, d, nil
	}
	return 0, 0, fmt.Errorf("no suitable connected pair found")
}
